//! Simulation results: everything the paper's figures are computed
//! from.

use optum_predictors::PredictionErrors;
use optum_types::{AppId, DelayCause, NodeId, PodId, PsiWindow, Resources, SloClass, Tick};

use crate::training::TrainingData;

/// Final outcome of one pod.
#[derive(Debug, Clone, PartialEq)]
pub struct PodOutcome {
    /// Pod identity.
    pub id: PodId,
    /// Owning application.
    pub app: AppId,
    /// SLO class.
    pub slo: SloClass,
    /// Resource request.
    pub request: Resources,
    /// Submission tick.
    pub arrival: Tick,
    /// Host the pod landed on, if placed.
    pub node: Option<NodeId>,
    /// Tick the pod was placed, if placed.
    pub placed_at: Option<Tick>,
    /// Ticks spent waiting in the pending queue (placement − arrival;
    /// for never-placed pods, window end − arrival).
    pub wait_ticks: u64,
    /// The last recorded reason a scheduling round declined the pod.
    pub delay_cause: Option<DelayCause>,
    /// Completion tick, if the pod finished inside the window.
    pub completed_at: Option<Tick>,
    /// Nominal (contention-free) duration in ticks.
    pub nominal_duration: u64,
    /// Actual wall-clock running duration in ticks (BE pods inflate
    /// under contention).
    pub actual_duration: Option<u64>,
    /// Worst CPU PSI (60-second window) observed while running.
    pub worst_psi: f64,
    /// Maximum pod CPU utilization (usage/request) while running.
    pub max_pod_cpu_util: f64,
    /// Maximum pod memory utilization while running.
    pub max_pod_mem_util: f64,
    /// Maximum CPU utilization of the hosting node while running.
    pub max_host_cpu_util: f64,
    /// Maximum memory utilization of the hosting node while running.
    pub max_host_mem_util: f64,
    /// Mean pod CPU utilization (usage/request) over the run.
    pub mean_pod_cpu_util: f64,
    /// Mean pod memory utilization over the run.
    pub mean_pod_mem_util: f64,
    /// Times this pod was preempted by an LSR pod.
    pub preemptions: u32,
    /// Times this pod was evicted by a fault (node crash or drain, or
    /// a straggler kill), as opposed to scheduler preemption.
    pub evictions: u32,
    /// Alignment-score rank of the chosen host under usage-based
    /// availability (1 = best; recorded when `record_ranks` is set).
    pub rank_by_usage: Option<u32>,
    /// Alignment-score rank under request-based availability.
    pub rank_by_request: Option<u32>,
    /// Tick the admission controller shed this pod (dropped from a
    /// full pending queue), if it was shed. Shed pods are never
    /// placed; their `wait_ticks` is censored at the shed tick.
    pub shed_at: Option<Tick>,
    /// Tick the serve front-end denied this pod because its owning
    /// client connection was evicted (lease expiry or permanent
    /// disconnect) before submitting it. Denied pods never reach the
    /// admission queue; their `wait_ticks` is censored at the denial
    /// tick, mirroring `shed_at`.
    pub disconnected_at: Option<Tick>,
}

impl PodOutcome {
    /// Waiting time in seconds.
    pub fn wait_seconds(&self) -> f64 {
        self.wait_ticks as f64 * optum_types::TICK_SECONDS as f64
    }

    /// Whether the pod was ever placed.
    pub fn scheduled(&self) -> bool {
        self.placed_at.is_some()
    }

    /// Completion-time inflation `(actual − nominal)/nominal`, when
    /// the pod completed.
    pub fn inflation(&self) -> Option<f64> {
        let actual = self.actual_duration? as f64;
        if self.nominal_duration == 0 {
            return None;
        }
        Some((actual - self.nominal_duration as f64) / self.nominal_duration as f64)
    }
}

/// Per-tick cluster aggregate statistics (recorded on a stride).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTickStats {
    /// The tick.
    pub tick: Tick,
    /// Mean CPU utilization across all hosts.
    pub mean_cpu_util: f64,
    /// Maximum CPU utilization across hosts.
    pub max_cpu_util: f64,
    /// Mean memory utilization across all hosts.
    pub mean_mem_util: f64,
    /// Maximum memory utilization across hosts.
    pub max_mem_util: f64,
    /// Hosts with at least one resident pod. Packing quality shows
    /// here: a scheduler that achieves the same work on fewer active
    /// hosts saves resources (the objective of Eq. 6 / Fig. 19(a)).
    pub active_nodes: usize,
    /// Mean CPU utilization across *active* hosts only.
    pub mean_cpu_util_active: f64,
    /// Mean memory utilization across *active* hosts only.
    pub mean_mem_util_active: f64,
    /// Pods waiting in the pending queue.
    pub pending: usize,
    /// Pods currently running.
    pub running: usize,
    /// BE pods submitted during this tick.
    pub submitted_be: usize,
    /// LS + LSR pods submitted during this tick.
    pub submitted_ls: usize,
    /// Mean per-pod CPU utilization of running BE pods.
    pub mean_be_pod_util: f64,
    /// Mean per-pod CPU utilization of running LS/LSR pods.
    pub mean_ls_pod_util: f64,
    /// Mean QPS of running LS/LSR pods.
    pub mean_ls_qps: f64,
    /// Hosts currently crashed ([`optum_types::NodeLifecycle::Down`]).
    pub down_nodes: usize,
}

impl ClusterTickStats {
    /// Serializes one recorded point for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.tick.0);
        w.put_f64(self.mean_cpu_util);
        w.put_f64(self.max_cpu_util);
        w.put_f64(self.mean_mem_util);
        w.put_f64(self.max_mem_util);
        w.put_u64(self.active_nodes as u64);
        w.put_f64(self.mean_cpu_util_active);
        w.put_f64(self.mean_mem_util_active);
        w.put_u64(self.pending as u64);
        w.put_u64(self.running as u64);
        w.put_u64(self.submitted_be as u64);
        w.put_u64(self.submitted_ls as u64);
        w.put_f64(self.mean_be_pod_util);
        w.put_f64(self.mean_ls_pod_util);
        w.put_f64(self.mean_ls_qps);
        w.put_u64(self.down_nodes as u64);
    }

    /// Restores one recorded point from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<ClusterTickStats> {
        Ok(ClusterTickStats {
            tick: Tick(r.get_u64()?),
            mean_cpu_util: r.get_f64()?,
            max_cpu_util: r.get_f64()?,
            mean_mem_util: r.get_f64()?,
            max_mem_util: r.get_f64()?,
            active_nodes: r.get_u64()? as usize,
            mean_cpu_util_active: r.get_f64()?,
            mean_mem_util_active: r.get_f64()?,
            pending: r.get_u64()? as usize,
            running: r.get_u64()? as usize,
            submitted_be: r.get_u64()? as usize,
            submitted_ls: r.get_u64()? as usize,
            mean_be_pod_util: r.get_f64()?,
            mean_ls_pod_util: r.get_f64()?,
            mean_ls_qps: r.get_f64()?,
            down_nodes: r.get_u64()? as usize,
        })
    }
}

/// One sampled point of a pod's recorded time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodPoint {
    /// The tick.
    pub tick: Tick,
    /// Actual usage.
    pub usage: Resources,
    /// CPU PSI windows.
    pub cpu_psi: PsiWindow,
    /// Memory PSI windows.
    pub mem_psi: PsiWindow,
    /// QPS (LS pods).
    pub qps: f64,
    /// Response time in ms (LS pods).
    pub response_time: f64,
    /// Hosting node CPU utilization.
    pub host_cpu_util: f64,
    /// Hosting node memory utilization.
    pub host_mem_util: f64,
    /// Network receive volume proxy.
    pub rx: f64,
    /// Network transmit volume proxy.
    pub tx: f64,
}

impl PodPoint {
    /// Serializes one sampled point for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.tick.0);
        w.put_f64(self.usage.cpu);
        w.put_f64(self.usage.mem);
        w.put_psi(&self.cpu_psi);
        w.put_psi(&self.mem_psi);
        w.put_f64(self.qps);
        w.put_f64(self.response_time);
        w.put_f64(self.host_cpu_util);
        w.put_f64(self.host_mem_util);
        w.put_f64(self.rx);
        w.put_f64(self.tx);
    }

    /// Restores one sampled point from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<PodPoint> {
        Ok(PodPoint {
            tick: Tick(r.get_u64()?),
            usage: Resources::new(r.get_f64()?, r.get_f64()?),
            cpu_psi: r.get_psi()?,
            mem_psi: r.get_psi()?,
            qps: r.get_f64()?,
            response_time: r.get_f64()?,
            host_cpu_util: r.get_f64()?,
            host_mem_util: r.get_f64()?,
            rx: r.get_f64()?,
            tx: r.get_f64()?,
        })
    }
}

/// A point-in-time snapshot of one node's commitments (drives the
/// over-commitment-rate distributions of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSnapshot {
    /// The node.
    pub node: NodeId,
    /// Snapshot tick.
    pub at: Tick,
    /// Node capacity.
    pub capacity: Resources,
    /// Sum of resident requests.
    pub requested: Resources,
    /// Sum of resident limits.
    pub limits: Resources,
    /// Actual usage at the snapshot.
    pub usage: Resources,
    /// Resident pods.
    pub pod_count: u32,
}

impl NodeSnapshot {
    /// Serializes one commitment snapshot for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.node.0 as u64);
        w.put_u64(self.at.0);
        for res in [self.capacity, self.requested, self.limits, self.usage] {
            w.put_f64(res.cpu);
            w.put_f64(res.mem);
        }
        w.put_u64(self.pod_count as u64);
    }

    /// Restores one commitment snapshot from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<NodeSnapshot> {
        Ok(NodeSnapshot {
            node: NodeId(r.get_u64()? as u32),
            at: Tick(r.get_u64()?),
            capacity: Resources::new(r.get_f64()?, r.get_f64()?),
            requested: Resources::new(r.get_f64()?, r.get_f64()?),
            limits: Resources::new(r.get_f64()?, r.get_f64()?),
            usage: Resources::new(r.get_f64()?, r.get_f64()?),
            pod_count: r.get_u64()? as u32,
        })
    }
}

/// Capacity-violation accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ViolationStats {
    /// Node-ticks where raw CPU demand exceeded capacity.
    pub cpu_node_ticks: u64,
    /// Node-ticks where raw memory demand exceeded capacity.
    pub mem_node_ticks: u64,
    /// Total node-ticks simulated.
    pub total_node_ticks: u64,
}

impl ViolationStats {
    /// Overall violation rate (violating node-ticks per node-tick).
    pub fn rate(&self) -> f64 {
        if self.total_node_ticks == 0 {
            return 0.0;
        }
        (self.cpu_node_ticks + self.mem_node_ticks) as f64 / self.total_node_ticks as f64
    }

    /// Serializes the accounting for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.cpu_node_ticks);
        w.put_u64(self.mem_node_ticks);
        w.put_u64(self.total_node_ticks);
    }

    /// Restores the accounting from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<ViolationStats> {
        Ok(ViolationStats {
            cpu_node_ticks: r.get_u64()?,
            mem_node_ticks: r.get_u64()?,
            total_node_ticks: r.get_u64()?,
        })
    }
}

/// Recovery accounting for one SLO class under churn.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassChurn {
    /// Fault-driven evictions of pods in this class.
    pub evictions: u64,
    /// Evictions later followed by a successful re-placement.
    pub rescheduled: u64,
    /// Total ticks from eviction to re-placement, over all
    /// re-placements.
    pub resched_ticks: u64,
    /// Evicted pods still un-placed when the window closed.
    pub failed: u64,
}

impl ClassChurn {
    /// Mean time-to-reschedule in ticks (over successful
    /// re-placements).
    pub fn mean_ttr_ticks(&self) -> f64 {
        if self.rescheduled == 0 {
            return 0.0;
        }
        self.resched_ticks as f64 / self.rescheduled as f64
    }
}

/// Fault-injection and recovery accounting for one run. All-zero for
/// healthy runs (an empty fault plan).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnStats {
    /// Node crashes applied.
    pub crashes: u64,
    /// Maintenance drains applied.
    pub drains: u64,
    /// Degradation episodes applied.
    pub degradations: u64,
    /// Straggler pod kills applied (only counted when a victim was
    /// resident).
    pub pod_kills: u64,
    /// Node-ticks spent crashed (capacity offline).
    pub down_node_ticks: u64,
    /// Placements the engine rejected because the scheduler's view was
    /// stale: the chosen node had failed or started draining by
    /// decision time. The pod goes back to the queue for a
    /// rescheduling round.
    pub stale_rejections: u64,
    /// Per-class recovery accounting, indexed in [`SloClass::ALL`]
    /// order.
    pub per_class: [ClassChurn; SloClass::ALL.len()],
}

impl ChurnStats {
    fn class_index(slo: SloClass) -> usize {
        SloClass::ALL
            .iter()
            .position(|&c| c == slo)
            .expect("every class is in ALL")
    }

    /// Recovery accounting of one class.
    pub fn class(&self, slo: SloClass) -> &ClassChurn {
        &self.per_class[Self::class_index(slo)]
    }

    /// Mutable recovery accounting of one class.
    pub fn class_mut(&mut self, slo: SloClass) -> &mut ClassChurn {
        &mut self.per_class[Self::class_index(slo)]
    }

    /// Total fault-driven evictions across classes.
    pub fn total_evictions(&self) -> u64 {
        self.per_class.iter().map(|c| c.evictions).sum()
    }

    /// Serializes the accounting for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.crashes);
        w.put_u64(self.drains);
        w.put_u64(self.degradations);
        w.put_u64(self.pod_kills);
        w.put_u64(self.down_node_ticks);
        w.put_u64(self.stale_rejections);
        w.put_u64(self.per_class.len() as u64);
        for c in &self.per_class {
            w.put_u64(c.evictions);
            w.put_u64(c.rescheduled);
            w.put_u64(c.resched_ticks);
            w.put_u64(c.failed);
        }
    }

    /// Restores the accounting from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<ChurnStats> {
        let mut churn = ChurnStats {
            crashes: r.get_u64()?,
            drains: r.get_u64()?,
            degradations: r.get_u64()?,
            pod_kills: r.get_u64()?,
            down_node_ticks: r.get_u64()?,
            stale_rejections: r.get_u64()?,
            ..ChurnStats::default()
        };
        let n = r.get_len()?;
        if n != churn.per_class.len() {
            return Err(optum_types::Error::InvalidData(format!(
                "snapshot corrupt: {n} churn classes, expected {}",
                churn.per_class.len()
            )));
        }
        for c in churn.per_class.iter_mut() {
            c.evictions = r.get_u64()?;
            c.rescheduled = r.get_u64()?;
            c.resched_ticks = r.get_u64()?;
            c.failed = r.get_u64()?;
        }
        Ok(churn)
    }
}

/// Admission accounting for one SLO class under overload protection.
///
/// The ledger is conserved by construction: a pod that reaches the
/// controller lands in exactly one of `admitted`, `shed`,
/// `disconnected` (denied because its submitting connection was
/// evicted), or (for BE pods still parked in the throttle buffer when
/// the window closes) `throttled_end`, so
/// `admitted + shed + throttled_end + disconnected == arrivals`
/// holds per class at all times. Shedding a pod that was previously
/// admitted moves it from `admitted` to `shed` (the `admitted` counter
/// is net of sheds, not a monotone event count).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassOverload {
    /// Pods of this class that reached the admission controller.
    pub arrivals: u64,
    /// Pods currently accounted as admitted (accepted into the pending
    /// queue and not subsequently shed).
    pub admitted: u64,
    /// Pods dropped by class-aware load shedding (queue over cap).
    pub shed: u64,
    /// Throttle-buffer releases: BE pods deferred by backpressure and
    /// later admitted when the queue drained below the high-water
    /// mark. Each release is also counted in `admitted`.
    pub requeued: u64,
    /// Pods still parked in the BE throttle buffer when the window
    /// closed (neither admitted nor shed).
    pub throttled_end: u64,
    /// Peak number of this class's pods in the pending queue.
    pub max_depth: u64,
    /// Pods denied by the serve front-end because their submitting
    /// connection was evicted (lease expiry or permanent disconnect)
    /// before it could submit them. Always zero for runs without a
    /// service front-end.
    pub disconnected: u64,
}

impl ClassOverload {
    /// Denied-service rate: the fraction of this class's arrivals the
    /// overload protection kept out — shed outright, or still parked
    /// in the throttle buffer when the window closed (backpressure
    /// that never released is denial too, not a technicality; under a
    /// refusing or saturated scheduler most BE pods end there).
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        (self.shed + self.throttled_end) as f64 / self.arrivals as f64
    }
}

/// Overload-protection accounting for one run: the admission
/// controller's per-class ledger plus decision-deadline pressure.
/// All-zero except `arrivals`/`admitted`/depths when the queue is
/// unbounded and no decision budget is set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverloadStats {
    /// Per-class admission ledger, indexed in [`SloClass::ALL`] order.
    pub per_class: [ClassOverload; SloClass::ALL.len()],
    /// Peak pending-queue depth (all classes).
    pub max_depth: u64,
    /// Peak BE throttle-buffer occupancy.
    pub throttled_peak: u64,
    /// Scheduling rounds that ran out of decision budget with pods
    /// still waiting.
    pub budget_exhausted_rounds: u64,
}

impl OverloadStats {
    fn class_index(slo: SloClass) -> usize {
        SloClass::ALL
            .iter()
            .position(|&c| c == slo)
            .expect("every class is in ALL")
    }

    /// Admission ledger of one class.
    pub fn class(&self, slo: SloClass) -> &ClassOverload {
        &self.per_class[Self::class_index(slo)]
    }

    /// Mutable admission ledger of one class.
    pub fn class_mut(&mut self, slo: SloClass) -> &mut ClassOverload {
        &mut self.per_class[Self::class_index(slo)]
    }

    /// Total pods shed across classes.
    pub fn total_shed(&self) -> u64 {
        self.per_class.iter().map(|c| c.shed).sum()
    }

    /// Whether the per-class conservation invariant holds:
    /// `admitted + shed + throttled_end + disconnected == arrivals`
    /// for every class.
    pub fn conserved(&self) -> bool {
        self.per_class
            .iter()
            .all(|c| c.admitted + c.shed + c.throttled_end + c.disconnected == c.arrivals)
    }

    /// Total pods denied by client-connection eviction across classes.
    pub fn total_disconnected(&self) -> u64 {
        self.per_class.iter().map(|c| c.disconnected).sum()
    }

    /// Serializes the accounting for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.max_depth);
        w.put_u64(self.throttled_peak);
        w.put_u64(self.budget_exhausted_rounds);
        w.put_u64(self.per_class.len() as u64);
        for c in &self.per_class {
            w.put_u64(c.arrivals);
            w.put_u64(c.admitted);
            w.put_u64(c.shed);
            w.put_u64(c.requeued);
            w.put_u64(c.throttled_end);
            w.put_u64(c.max_depth);
            w.put_u64(c.disconnected);
        }
    }

    /// Restores the accounting from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<OverloadStats> {
        let mut overload = OverloadStats {
            max_depth: r.get_u64()?,
            throttled_peak: r.get_u64()?,
            budget_exhausted_rounds: r.get_u64()?,
            ..OverloadStats::default()
        };
        let n = r.get_len()?;
        if n != overload.per_class.len() {
            return Err(optum_types::Error::InvalidData(format!(
                "snapshot corrupt: {n} overload classes, expected {}",
                overload.per_class.len()
            )));
        }
        for c in overload.per_class.iter_mut() {
            c.arrivals = r.get_u64()?;
            c.admitted = r.get_u64()?;
            c.shed = r.get_u64()?;
            c.requeued = r.get_u64()?;
            c.throttled_end = r.get_u64()?;
            c.max_depth = r.get_u64()?;
            c.disconnected = r.get_u64()?;
        }
        Ok(overload)
    }
}

/// Everything a simulation run produces.
pub struct SimResult {
    /// Scheduler display name.
    pub scheduler: String,
    /// Per-pod outcomes, indexed by pod id.
    pub outcomes: Vec<PodOutcome>,
    /// Strided cluster aggregates.
    pub cluster_series: Vec<ClusterTickStats>,
    /// Full time series for sampled pods.
    pub pod_series: Vec<(PodId, Vec<PodPoint>)>,
    /// Capacity-violation accounting.
    pub violations: ViolationStats,
    /// Fault-injection and recovery accounting (all-zero for healthy
    /// runs).
    pub churn: ChurnStats,
    /// Overload-protection accounting (admission ledger, shed counts,
    /// decision-budget pressure).
    pub overload: OverloadStats,
    /// Predictor-accuracy results (when enabled).
    pub predictor_errors: Vec<(String, PredictionErrors)>,
    /// Offline-profiling dataset (when enabled).
    pub training: Option<TrainingData>,
    /// Per-node commitment snapshot (when `snapshot_tick` is set).
    pub node_snapshot: Vec<NodeSnapshot>,
    /// Last simulated tick (exclusive).
    pub end_tick: Tick,
}

impl SimResult {
    /// Outcomes of pods in a given SLO class.
    pub fn outcomes_of(&self, slo: SloClass) -> impl Iterator<Item = &PodOutcome> {
        self.outcomes.iter().filter(move |o| o.slo == slo)
    }

    /// Mean CPU utilization across the recorded series.
    pub fn mean_cpu_utilization(&self) -> f64 {
        if self.cluster_series.is_empty() {
            return 0.0;
        }
        self.cluster_series
            .iter()
            .map(|s| s.mean_cpu_util)
            .sum::<f64>()
            / self.cluster_series.len() as f64
    }

    /// Fraction of placed pods among all submitted.
    pub fn placement_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.scheduled()).count() as f64 / self.outcomes.len() as f64
    }

    /// FNV-1a digest over every pod outcome, the admission/churn
    /// ledgers and the recorded cluster series — two runs with equal
    /// digests placed, completed, shed and measured identically. The
    /// serve protocol reports this as the deterministic end-state
    /// digest of a session (mirrors `ScaleResult::digest`).
    pub fn digest(&self) -> u64 {
        let mut fp = crate::checkpoint::Fingerprint::new();
        fp.fold(self.end_tick.0);
        fp.fold(self.outcomes.len() as u64);
        for o in &self.outcomes {
            fp.fold(o.node.map(|n| n.0 as u64).unwrap_or(u64::MAX));
            fp.fold(o.placed_at.map(|t| t.0).unwrap_or(u64::MAX));
            fp.fold(o.completed_at.map(|t| t.0).unwrap_or(u64::MAX));
            fp.fold(o.shed_at.map(|t| t.0).unwrap_or(u64::MAX));
            fp.fold(o.wait_ticks);
            fp.fold(o.preemptions as u64);
            fp.fold(o.evictions as u64);
            fp.fold(o.actual_duration.unwrap_or(u64::MAX));
            // Folded conditionally so every pre-existing run (no serve
            // front-end, hence no denials) keeps its digest byte for
            // byte; a marker distinguishes "denied at t" from any
            // plain-field continuation.
            if let Some(t) = o.disconnected_at {
                fp.fold(0xD15C);
                fp.fold(t.0);
            }
        }
        for c in &self.overload.per_class {
            fp.fold(c.arrivals);
            fp.fold(c.admitted);
            fp.fold(c.shed);
            fp.fold(c.requeued);
            fp.fold(c.throttled_end);
            if c.disconnected != 0 {
                fp.fold(c.disconnected);
            }
        }
        fp.fold(self.churn.total_evictions());
        fp.fold(self.violations.cpu_node_ticks);
        fp.fold(self.violations.mem_node_ticks);
        fp.fold(self.violations.total_node_ticks);
        fp.fold(self.cluster_series.len() as u64);
        for s in &self.cluster_series {
            fp.fold(s.tick.0);
            fp.fold_f64(s.mean_cpu_util);
            fp.fold_f64(s.mean_mem_util);
            fp.fold(s.pending as u64);
            fp.fold(s.running as u64);
            fp.fold(s.active_nodes as u64);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> PodOutcome {
        PodOutcome {
            id: PodId(0),
            app: AppId(0),
            slo: SloClass::Be,
            request: Resources::new(0.02, 0.01),
            arrival: Tick(10),
            node: Some(NodeId(3)),
            placed_at: Some(Tick(14)),
            wait_ticks: 4,
            delay_cause: Some(DelayCause::Cpu),
            completed_at: Some(Tick(100)),
            nominal_duration: 50,
            actual_duration: Some(86),
            worst_psi: 0.2,
            max_pod_cpu_util: 0.4,
            max_pod_mem_util: 0.9,
            max_host_cpu_util: 0.8,
            max_host_mem_util: 0.6,
            mean_pod_cpu_util: 0.3,
            mean_pod_mem_util: 0.8,
            preemptions: 0,
            evictions: 0,
            rank_by_usage: None,
            rank_by_request: None,
            shed_at: None,
            disconnected_at: None,
        }
    }

    #[test]
    fn outcome_accessors() {
        let o = outcome();
        assert_eq!(o.wait_seconds(), 120.0);
        assert!(o.scheduled());
        assert!((o.inflation().unwrap() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn violation_rate() {
        let v = ViolationStats {
            cpu_node_ticks: 5,
            mem_node_ticks: 5,
            total_node_ticks: 1000,
        };
        assert!((v.rate() - 0.01).abs() < 1e-12);
        assert_eq!(ViolationStats::default().rate(), 0.0);
    }

    #[test]
    fn overload_class_accounting_and_conservation() {
        let mut o = OverloadStats::default();
        let be = o.class_mut(SloClass::Be);
        be.arrivals = 10;
        be.admitted = 6;
        be.shed = 3;
        be.throttled_end = 1;
        be.max_depth = 7;
        assert!(o.conserved());
        // Denied-service rate: 3 shed + 1 still throttled of 10.
        assert!((o.class(SloClass::Be).shed_rate() - 0.4).abs() < 1e-12);
        assert_eq!(o.total_shed(), 3);
        o.class_mut(SloClass::Ls).shed = 1;
        assert!(!o.conserved(), "LS shed without an arrival must trip");
        assert_eq!(o.class(SloClass::Lsr).shed_rate(), 0.0);
    }

    #[test]
    fn disconnected_pods_enter_the_conservation_law() {
        let mut o = OverloadStats::default();
        let be = o.class_mut(SloClass::Be);
        be.arrivals = 10;
        be.admitted = 6;
        be.shed = 2;
        be.disconnected = 2;
        assert!(o.conserved());
        assert_eq!(o.total_disconnected(), 2);
        o.class_mut(SloClass::Be).disconnected = 3;
        assert!(!o.conserved(), "a denial without an arrival must trip");
    }

    #[test]
    fn churn_class_accounting() {
        let mut c = ChurnStats::default();
        c.class_mut(SloClass::Be).evictions += 3;
        c.class_mut(SloClass::Be).rescheduled += 2;
        c.class_mut(SloClass::Be).resched_ticks += 10;
        c.class_mut(SloClass::Ls).evictions += 1;
        assert_eq!(c.class(SloClass::Be).evictions, 3);
        assert_eq!(c.total_evictions(), 4);
        assert!((c.class(SloClass::Be).mean_ttr_ticks() - 5.0).abs() < 1e-12);
        assert_eq!(c.class(SloClass::Lsr).mean_ttr_ticks(), 0.0);
    }
}
