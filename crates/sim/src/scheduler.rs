//! The scheduler interface the simulator drives.

use optum_types::{DelayCause, NodeId, PodSpec};

use crate::view::ClusterView;

/// The outcome of one placement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Place the pod on this host.
    Place(NodeId),
    /// No acceptable host this round; retry later. The cause feeds the
    /// delay attribution of Fig. 9(b).
    Unplaceable(DelayCause),
}

/// A unified scheduler: given a pending pod and the cluster state,
/// pick a host (or decline).
///
/// The simulator calls [`Scheduler::select_node`] once per pending pod
/// per tick (budget permitting), in SLO-priority order, updating the
/// cluster view between calls. [`Scheduler::on_tick`] runs once per
/// tick before scheduling, for bookkeeping (profile updates, window
/// maintenance).
pub trait Scheduler {
    /// Display name (used in result labeling).
    fn name(&self) -> String;

    /// Chooses a host for `pod`, or declines with a cause.
    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision;

    /// Per-tick bookkeeping hook.
    fn on_tick(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }

    /// Serializes the scheduler's internal mutable state for an engine
    /// checkpoint. `None` (the default) declares the scheduler
    /// non-checkpointable: the engine refuses to write a snapshot and
    /// reports a clear error instead of silently dropping state.
    /// Stateless schedulers should return `Some(Vec::new())`.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`Scheduler::save_state`] when
    /// resuming from a checkpoint.
    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        let _ = state;
        Err(optum_types::Error::InvalidData(format!(
            "scheduler '{}' does not support checkpoint restore",
            self.name()
        )))
    }
}

/// Blanket impl so boxed schedulers can be passed around.
impl Scheduler for Box<dyn Scheduler> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision {
        self.as_mut().select_node(pod, view)
    }

    fn on_tick(&mut self, view: &ClusterView<'_>) {
        self.as_mut().on_tick(view)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        self.as_ref().save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        self.as_mut().load_state(state)
    }
}

/// Same for `Send` boxed schedulers, so rosters of heterogeneous
/// schedulers can move onto experiment worker threads.
impl Scheduler for Box<dyn Scheduler + Send> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision {
        self.as_mut().select_node(pod, view)
    }

    fn on_tick(&mut self, view: &ClusterView<'_>) {
        self.as_mut().on_tick(view)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        self.as_ref().save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        self.as_mut().load_state(state)
    }
}
