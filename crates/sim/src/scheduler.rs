//! The scheduler interface the simulator drives.

use optum_types::{DelayCause, NodeId, PodSpec};

use crate::view::ClusterView;

/// The outcome of one placement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Place the pod on this host.
    Place(NodeId),
    /// No acceptable host this round; retry later. The cause feeds the
    /// delay attribution of Fig. 9(b).
    Unplaceable(DelayCause),
}

/// A per-tick scheduling budget in deterministic **virtual cost**
/// units (one unit ≈ one candidate host examined) — never wall clock,
/// so budget-limited runs replay bit-identically across machines and
/// thread counts.
///
/// The engine creates one budget per tick and threads it through
/// [`Scheduler::on_tick_budgeted`] and every
/// [`Scheduler::select_node_budgeted`] call of the round. Schedulers
/// charge what they examine and may consult [`DecisionBudget::remaining`]
/// to shrink their own work (smaller Medea batch, truncated Optum
/// candidate set, first-fit fallback for full-scan schedulers). An
/// unlimited budget (no `decision_cost_budget` configured) never
/// exhausts, and every scheduler must behave exactly as its
/// un-budgeted path in that case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionBudget {
    limit: u64,
    spent: u64,
}

impl DecisionBudget {
    /// A budget of `limit` virtual cost units.
    pub fn new(limit: u64) -> DecisionBudget {
        DecisionBudget { limit, spent: 0 }
    }

    /// A budget that never exhausts (the no-deadline default).
    pub fn unlimited() -> DecisionBudget {
        DecisionBudget {
            limit: u64::MAX,
            spent: 0,
        }
    }

    /// Whether this budget can actually exhaust.
    pub fn is_limited(&self) -> bool {
        self.limit != u64::MAX
    }

    /// Records `units` of work (saturating).
    pub fn charge(&mut self, units: u64) {
        self.spent = self.spent.saturating_add(units);
    }

    /// Unspent units (zero once exhausted).
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent)
    }

    /// Whether the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.limit
    }

    /// Units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

/// A unified scheduler: given a pending pod and the cluster state,
/// pick a host (or decline).
///
/// The simulator calls [`Scheduler::select_node`] once per pending pod
/// per tick (budget permitting), in SLO-priority order, updating the
/// cluster view between calls. [`Scheduler::on_tick`] runs once per
/// tick before scheduling, for bookkeeping (profile updates, window
/// maintenance).
pub trait Scheduler {
    /// Display name (used in result labeling).
    fn name(&self) -> String;

    /// Chooses a host for `pod`, or declines with a cause.
    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision;

    /// Per-tick bookkeeping hook.
    fn on_tick(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }

    /// Budget-aware variant of [`Scheduler::select_node`]. The default
    /// charges a full host scan and delegates; schedulers with a
    /// cheaper degraded mode (first-fit, truncated sampling) override
    /// this to respect the remaining budget. Must behave exactly like
    /// `select_node` under an unlimited budget.
    fn select_node_budgeted(
        &mut self,
        pod: &PodSpec,
        view: &ClusterView<'_>,
        budget: &mut DecisionBudget,
    ) -> Decision {
        budget.charge(view.nodes.len() as u64);
        self.select_node(pod, view)
    }

    /// Budget-aware variant of [`Scheduler::on_tick`]. The default
    /// delegates without charging (bookkeeping is free); schedulers
    /// that do per-tick placement work (Medea's batch solve) override
    /// this to shrink the work under pressure. Must behave exactly
    /// like `on_tick` under an unlimited budget.
    fn on_tick_budgeted(&mut self, view: &ClusterView<'_>, budget: &mut DecisionBudget) {
        let _ = budget;
        self.on_tick(view);
    }

    /// Serializes the scheduler's internal mutable state for an engine
    /// checkpoint. `None` (the default) declares the scheduler
    /// non-checkpointable: the engine refuses to write a snapshot and
    /// reports a clear error instead of silently dropping state.
    /// Stateless schedulers should return `Some(Vec::new())`.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`Scheduler::save_state`] when
    /// resuming from a checkpoint.
    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        let _ = state;
        Err(optum_types::Error::InvalidData(format!(
            "scheduler '{}' does not support checkpoint restore",
            self.name()
        )))
    }
}

/// Blanket impl so boxed schedulers can be passed around.
impl Scheduler for Box<dyn Scheduler> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision {
        self.as_mut().select_node(pod, view)
    }

    fn on_tick(&mut self, view: &ClusterView<'_>) {
        self.as_mut().on_tick(view)
    }

    fn select_node_budgeted(
        &mut self,
        pod: &PodSpec,
        view: &ClusterView<'_>,
        budget: &mut DecisionBudget,
    ) -> Decision {
        self.as_mut().select_node_budgeted(pod, view, budget)
    }

    fn on_tick_budgeted(&mut self, view: &ClusterView<'_>, budget: &mut DecisionBudget) {
        self.as_mut().on_tick_budgeted(view, budget)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        self.as_ref().save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        self.as_mut().load_state(state)
    }
}

/// Same for `Send` boxed schedulers, so rosters of heterogeneous
/// schedulers can move onto experiment worker threads.
impl Scheduler for Box<dyn Scheduler + Send> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision {
        self.as_mut().select_node(pod, view)
    }

    fn on_tick(&mut self, view: &ClusterView<'_>) {
        self.as_mut().on_tick(view)
    }

    fn select_node_budgeted(
        &mut self,
        pod: &PodSpec,
        view: &ClusterView<'_>,
        budget: &mut DecisionBudget,
    ) -> Decision {
        self.as_mut().select_node_budgeted(pod, view, budget)
    }

    fn on_tick_budgeted(&mut self, view: &ClusterView<'_>, budget: &mut DecisionBudget) {
        self.as_mut().on_tick_budgeted(view, budget)
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        self.as_ref().save_state()
    }

    fn load_state(&mut self, state: &[u8]) -> optum_types::Result<()> {
        self.as_mut().load_state(state)
    }
}
