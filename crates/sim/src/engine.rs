//! The simulation engine.

use optum_predictors::PredictionErrors;
use optum_types::{
    DelayCause, Error, FaultEvent, FaultKind, NodeId, NodeLifecycle, PodId, PsiWindow, Resources,
    Result, SloClass, Tick,
};

use optum_trace::{hash_noise, AppProfile, PsiShape, TickTerms, Workload};

use crate::appstats::AppStatsStore;
use crate::checkpoint::{self, Fingerprint, SnapReader, SnapWriter, SNAP_VERSION};
use crate::config::SimConfig;
use crate::node::{NodeRuntime, ResidentPod};
use crate::result::{
    ChurnStats, ClusterTickStats, OverloadStats, PodOutcome, PodPoint, SimResult, ViolationStats,
};
use crate::scheduler::{Decision, DecisionBudget, Scheduler};
use crate::training::{
    normalize_ct, AppUsageProfile, CtSample, PsiSample, TrainingData, TripleEroTable,
};
use crate::view::ClusterView;

/// How often cached app percentiles refresh (ticks).
const REFRESH_STRIDE: u64 = 60;
/// How often pairwise ERO observations update (ticks).
const ERO_STRIDE: u64 = 5;
/// How often triple-wise ERO observations update (much sparser: the
/// triple space is cubic).
const TRIPLE_ERO_STRIDE: u64 = 25;

/// Per-running-pod dynamic state.
#[derive(Debug, Clone)]
struct RunningState {
    node: NodeId,
    /// Wall-clock end for long-running pods.
    end_tick: Option<Tick>,
    /// Remaining work units for best-effort pods.
    work_left: f64,
    cpu_psi: PsiWindow,
    mem_psi: PsiWindow,
    worst_psi: f64,
    max_pod_cpu_util: f64,
    max_pod_mem_util: f64,
    max_host_cpu_util: f64,
    max_host_mem_util: f64,
    util_sum: Resources,
    util_ticks: u64,
}

impl RunningState {
    fn snap_save(&self, w: &mut SnapWriter) {
        w.put_u64(self.node.0 as u64);
        w.put_opt_u64(self.end_tick.map(|t| t.0));
        w.put_f64(self.work_left);
        w.put_psi(&self.cpu_psi);
        w.put_psi(&self.mem_psi);
        w.put_f64(self.worst_psi);
        w.put_f64(self.max_pod_cpu_util);
        w.put_f64(self.max_pod_mem_util);
        w.put_f64(self.max_host_cpu_util);
        w.put_f64(self.max_host_mem_util);
        w.put_f64(self.util_sum.cpu);
        w.put_f64(self.util_sum.mem);
        w.put_u64(self.util_ticks);
    }

    fn snap_load(r: &mut SnapReader<'_>) -> Result<RunningState> {
        Ok(RunningState {
            node: NodeId(r.get_u64()? as u32),
            end_tick: r.get_opt_u64()?.map(Tick),
            work_left: r.get_f64()?,
            cpu_psi: r.get_psi()?,
            mem_psi: r.get_psi()?,
            worst_psi: r.get_f64()?,
            max_pod_cpu_util: r.get_f64()?,
            max_pod_mem_util: r.get_f64()?,
            max_host_cpu_util: r.get_f64()?,
            max_host_mem_util: r.get_f64()?,
            util_sum: Resources::new(r.get_f64()?, r.get_f64()?),
            util_ticks: r.get_u64()?,
        })
    }
}

/// Why a running pod is being removed from its node before
/// completion. The kind decides whether progress survives and whether
/// the restart carries a backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EvictKind {
    /// Scheduler-initiated preemption (LSR displacing BE): progress
    /// kept, immediate requeue.
    Preempt,
    /// Graceful eviction for maintenance: progress kept, restart
    /// backoff applies.
    Drain,
    /// Node crash: progress lost, restart backoff applies.
    Crash,
    /// Straggler kill: progress lost, restart backoff applies.
    Kill,
}

impl EvictKind {
    fn keeps_progress(&self) -> bool {
        matches!(self, EvictKind::Preempt | EvictKind::Drain)
    }

    fn is_fault(&self) -> bool {
        !matches!(self, EvictKind::Preempt)
    }
}

/// An outstanding predictor-evaluation point: predictions made at one
/// tick, scored against the peak usage seen until `matures`.
struct EvalPoint {
    node: usize,
    matures: Tick,
    predictions: Vec<Resources>,
    peak: Resources,
}

/// The discrete-event simulator (see crate docs for the tick loop).
///
/// A simulator borrows its [`Workload`] immutably, so any number of
/// concurrent simulations (the experiment fan-out) share one workload
/// with zero copies; all mutable state lives inside the simulator.
/// Per-tick buffers are owned scratch fields reused across ticks, so
/// the steady-state tick loop is allocation-free apart from recorded
/// series/training output.
pub struct Simulator<'w, S: Scheduler> {
    workload: &'w Workload,
    scheduler: S,
    config: SimConfig,
    nodes: Vec<NodeRuntime>,
    apps: AppStatsStore,
    pending: Vec<PodId>,
    /// Whether `pending` is currently sorted by the SLO-priority key.
    /// Pushes that keep the key order preserve the flag, so quiet
    /// ticks (and storm ticks whose arrivals happen to land in order)
    /// skip the per-round re-sort entirely; the sort key is total
    /// (pod id tiebreak), so sorting only when dirty yields exactly
    /// the order the previous unconditional re-sort produced.
    pending_sorted: bool,
    /// BE pods deferred by admission backpressure (queue depth over
    /// the high-water mark), in arrival order, awaiting release.
    throttled: std::collections::VecDeque<PodId>,
    /// Pending-queue depth per SLO class (in [`SloClass::ALL`] order),
    /// maintained incrementally for the overload max-depth stats.
    class_depth: [u64; SloClass::ALL.len()],
    overload: OverloadStats,
    running: Vec<Option<RunningState>>,
    /// Remaining work of preempted BE pods awaiting re-placement.
    suspended_work: Vec<Option<f64>>,
    outcomes: Vec<PodOutcome>,
    next_arrival: usize,
    // Fault injection (all quiescent when the plan is empty).
    faults: Vec<FaultEvent>,
    next_fault: usize,
    /// Per-pod tick of the last eviction (any kind), cleared on
    /// re-placement; restarts waiting-time accounting.
    evicted_at: Vec<Option<Tick>>,
    /// Per-pod flag: the last eviction was fault-driven (drives the
    /// per-class recovery accounting).
    fault_evicted: Vec<bool>,
    /// Per-pod earliest retry tick (capped exponential restart
    /// backoff after fault-driven evictions).
    not_before: Vec<Tick>,
    churn: ChurnStats,
    sampled: Vec<bool>,
    /// Per-pod index into `pod_series` (`usize::MAX` = not sampled),
    /// so the hot loop records points without a linear scan.
    series_slot: Vec<usize>,
    pod_series: Vec<(PodId, Vec<PodPoint>)>,
    cluster_series: Vec<ClusterTickStats>,
    violations: ViolationStats,
    // Training collection.
    psi_samples: Vec<PsiSample>,
    ct_samples: Vec<CtSample>,
    triple_ero: TripleEroTable,
    // Predictor evaluation.
    eval_points: Vec<EvalPoint>,
    eval_errors: Vec<(String, PredictionErrors)>,
    node_snapshot: Vec<crate::result::NodeSnapshot>,
    // Scratch buffers reused across ticks.
    usage_scratch: Vec<(PodId, Resources, f64)>,
    app_group_scratch: Vec<(u32, f64, f64)>,
    completion_scratch: Vec<(PodId, usize)>,
    /// Per-app physics terms hoisted once per tick (indexed by app).
    tick_terms_scratch: Vec<TickTerms>,
    /// Static per-app PSI sigmoid parameters (indexed by app).
    psi_shapes: Vec<PsiShape>,
    /// Per-node memo of host-contention sigmoids, keyed by the
    /// `(beta, threshold)` bit patterns (apps sharing a sigmoid share
    /// the value; the distinct-shape count per node is tiny).
    contention_scratch: Vec<(u64, u64, f64)>,
    pending_scratch: Vec<PodId>,
    affinity_fractions: Vec<f64>,
    end_tick: Tick,
    /// First tick of the loop: zero for fresh runs, the snapshot tick
    /// after a checkpoint restore.
    start_tick: Tick,
    /// Next tick the incremental API will execute ([`Simulator::step`]);
    /// equals `start_tick` until the first step. The batch loop sets it
    /// to `end_tick` on completion so [`Simulator::finish`] and
    /// [`Simulator::run`] share one result path.
    next_step: Tick,
    /// Serve mode: when set, `place`/`complete`/`evict`/`shed_pod`
    /// record events into the outbox buffers below. Off in batch runs,
    /// so the hot loop never pays for the pushes.
    events_enabled: bool,
    ev_placed: Vec<(PodId, NodeId)>,
    ev_completed: Vec<PodId>,
    ev_evicted: Vec<PodId>,
    ev_shed: Vec<PodId>,
    ev_denied: Vec<PodId>,
}

/// One entry of the submission channel for
/// [`Simulator::step_entries`]: either a client submission of the next
/// trace pod, or a front-end denial of it (the pod's owning connection
/// was evicted before it could submit). Both consume the trace cursor,
/// so a mixed entry stream still covers the trace consecutively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitEntry {
    /// Submit the pod into the admission controller.
    Submit(PodId),
    /// Deny the pod: it lands in the `disconnected` ledger class
    /// without ever entering the pending queue.
    Deny(PodId),
}

impl SubmitEntry {
    /// The pod this entry concerns.
    pub fn pod(&self) -> PodId {
        match *self {
            SubmitEntry::Submit(p) | SubmitEntry::Deny(p) => p,
        }
    }
}

/// Everything one incremental tick produced (see [`Simulator::step`]):
/// the engine's answer to the submissions admitted this tick plus the
/// lifecycle events its physics generated. Event order is
/// deterministic — placement order is the scheduling-round order,
/// completions the physics-pass order — so a serve session's event
/// stream replays bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepOutbox {
    /// The tick that was executed.
    pub tick: Tick,
    /// Pods placed this tick, with their host.
    pub placed: Vec<(PodId, NodeId)>,
    /// Pods whose run completed this tick.
    pub completed: Vec<PodId>,
    /// Pods evicted this tick (faults or preemption).
    pub evicted: Vec<PodId>,
    /// Pods shed by admission control this tick (at submission for a
    /// full queue, or from the queue back under cap pressure).
    pub shed: Vec<PodId>,
    /// Pods denied this tick because their submitting connection was
    /// evicted (only ever produced by [`SubmitEntry::Deny`] entries).
    pub denied: Vec<PodId>,
}

// The experiment layer fans independent simulations out across worker
// threads over one shared `&Workload`; this pins down at compile time
// that such sharing is sound.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    fn assert_send<T: Send>() {}
    assert_sync::<Workload>();
    assert_send::<SimResult>();
};

impl<'w, S: Scheduler> Simulator<'w, S> {
    /// Builds a simulator over a workload.
    pub fn new(workload: &'w Workload, scheduler: S, mut config: SimConfig) -> Result<Self> {
        if config.cluster.node_count == 0 {
            return Err(Error::InvalidConfig(
                "cluster needs at least one node".into(),
            ));
        }
        if let Some(every) = config.checkpoint_every {
            if every == 0 {
                return Err(Error::InvalidConfig(
                    "checkpoint interval must be positive".into(),
                ));
            }
            if config.checkpoint_path.is_none() {
                return Err(Error::InvalidConfig(
                    "checkpoint_every requires checkpoint_path".into(),
                ));
            }
            if config.predictor_eval.is_some() {
                return Err(Error::InvalidConfig(
                    "checkpointing cannot be combined with predictor evaluation \
                     (open evaluation points hold live predictor handles that \
                     cannot be serialized)"
                        .into(),
                ));
            }
        }
        let end_tick = config
            .end_tick
            .unwrap_or(Tick(workload.config.window_ticks()))
            .min(Tick(workload.config.window_ticks()));
        let nodes: Vec<NodeRuntime> = config
            .cluster
            .nodes()
            .map(|n| NodeRuntime::with_window(n, config.history_window))
            .collect();
        let n_pods = workload.pods.len();
        let n_apps = workload.apps.len();
        // Pick the per-app sampled pods (the first K submitted).
        let mut sampled = vec![false; n_pods];
        let mut per_app = vec![0usize; n_apps];
        if config.pods_per_app_sampled > 0 {
            for pod in &workload.pods {
                let a = pod.spec.app.index();
                if per_app[a] < config.pods_per_app_sampled {
                    per_app[a] += 1;
                    sampled[pod.spec.id.index()] = true;
                }
            }
        }
        let outcomes = workload
            .pods
            .iter()
            .map(|p| PodOutcome {
                id: p.spec.id,
                app: p.spec.app,
                slo: p.spec.slo,
                request: p.spec.request,
                arrival: p.spec.arrival,
                node: None,
                placed_at: None,
                wait_ticks: 0,
                delay_cause: None,
                completed_at: None,
                nominal_duration: p.spec.nominal_duration.unwrap_or(0),
                actual_duration: None,
                worst_psi: 0.0,
                max_pod_cpu_util: 0.0,
                max_pod_mem_util: 0.0,
                max_host_cpu_util: 0.0,
                max_host_mem_util: 0.0,
                mean_pod_cpu_util: 0.0,
                mean_pod_mem_util: 0.0,
                preemptions: 0,
                evictions: 0,
                rank_by_usage: None,
                rank_by_request: None,
                shed_at: None,
                disconnected_at: None,
            })
            .collect();
        let faults = std::mem::take(&mut config.fault_events);
        debug_assert!(
            faults
                .windows(2)
                .all(|w| w[0].order_key() <= w[1].order_key()),
            "fault plan must be sorted by order_key (use optum_types::sort_fault_plan)"
        );
        let eval_errors = config
            .predictor_eval
            .as_ref()
            .map(|e| {
                e.predictors
                    .iter()
                    .map(|p| (p.name().to_string(), PredictionErrors::default()))
                    .collect()
            })
            .unwrap_or_default();
        let pod_series: Vec<(PodId, Vec<PodPoint>)> = sampled
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| (PodId(i as u32), Vec::new()))
            .collect();
        let mut series_slot = vec![usize::MAX; n_pods];
        for (slot, (pid, _)) in pod_series.iter().enumerate() {
            series_slot[pid.index()] = slot;
        }
        Ok(Simulator {
            workload,
            scheduler,
            config,
            nodes,
            apps: AppStatsStore::new(n_apps),
            pending: Vec::new(),
            pending_sorted: true,
            throttled: std::collections::VecDeque::new(),
            class_depth: [0; SloClass::ALL.len()],
            overload: OverloadStats::default(),
            running: vec![None; n_pods],
            suspended_work: vec![None; n_pods],
            outcomes,
            next_arrival: 0,
            faults,
            next_fault: 0,
            evicted_at: vec![None; n_pods],
            fault_evicted: vec![false; n_pods],
            not_before: vec![Tick::ZERO; n_pods],
            churn: ChurnStats::default(),
            sampled,
            series_slot,
            pod_series,
            cluster_series: Vec::new(),
            violations: ViolationStats::default(),
            psi_samples: Vec::new(),
            ct_samples: Vec::new(),
            triple_ero: TripleEroTable::new(),
            eval_points: Vec::new(),
            eval_errors,
            node_snapshot: Vec::new(),
            usage_scratch: Vec::new(),
            app_group_scratch: Vec::new(),
            completion_scratch: Vec::new(),
            tick_terms_scratch: Vec::new(),
            psi_shapes: workload.apps.iter().map(|a| a.psi_shape()).collect(),
            contention_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            affinity_fractions: workload.apps.iter().map(|a| a.affinity_fraction).collect(),
            end_tick,
            start_tick: Tick::ZERO,
            next_step: Tick::ZERO,
            events_enabled: false,
            ev_placed: Vec::new(),
            ev_completed: Vec::new(),
            ev_evicted: Vec::new(),
            ev_shed: Vec::new(),
            ev_denied: Vec::new(),
        })
    }

    /// Builds a simulator and restores a checkpoint into it, so
    /// [`Simulator::run`] resumes from the snapshot tick. The workload
    /// and configuration must match the checkpointed run (validated by
    /// fingerprint); the scheduler must be a freshly built instance of
    /// the same scheduler, whose state the snapshot overwrites.
    pub fn resume(
        workload: &'w Workload,
        scheduler: S,
        config: SimConfig,
        snapshot: &[u8],
    ) -> Result<Self> {
        let mut sim = Simulator::new(workload, scheduler, config)?;
        sim.restore_from(snapshot)?;
        Ok(sim)
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(mut self) -> Result<SimResult> {
        let _run = optum_obs::span!("sim.run");
        let mut t = self.start_tick;
        while t < self.end_tick {
            let _tick = optum_obs::span!("sim.tick");
            self.maybe_checkpoint(t)?;
            let (sub_be, sub_ls) = self.admit_arrivals(t);
            self.tick_tail(t, sub_be, sub_ls);
            t = t.next();
        }
        self.next_step = t;
        self.into_result()
    }

    /// Writes the periodic checkpoint due at the top of tick `t`, if
    /// any. Snapshots are cut before any of the tick's events: resuming
    /// replays tick `t` in full, so the resumed run is bit-identical to
    /// an uninterrupted one.
    fn maybe_checkpoint(&mut self, t: Tick) -> Result<()> {
        if let Some(every) = self.config.checkpoint_every {
            if t.0 != self.start_tick.0 && t.0.is_multiple_of(every) {
                self.write_checkpoint(t)?;
            }
        }
        Ok(())
    }

    /// Everything one tick does after admission — shared verbatim by
    /// the batch loop and the incremental [`Simulator::step`], so serve
    /// mode is the batch physics, not a reimplementation.
    fn tick_tail(&mut self, t: Tick, sub_be: usize, sub_ls: usize) {
        if t.0.is_multiple_of(REFRESH_STRIDE) {
            self.apps.refresh_all();
        }
        // Faults apply before the scheduler sees the tick, so
        // every view already reflects crashed/draining nodes;
        // stale decisions only arise from pre-fault state a
        // scheduler cached itself.
        self.apply_faults(t);
        // One decision deadline per tick, shared between the
        // scheduler's tick hook and the placement round.
        let mut cost = match self.config.decision_cost_budget {
            Some(limit) => DecisionBudget::new(limit),
            None => DecisionBudget::unlimited(),
        };
        self.tick_hook(t, &mut cost);
        self.schedule_round(t, &mut cost);
        self.physics_pass(t, sub_be, sub_ls);
        if self.config.snapshot_tick == Some(t) {
            self.node_snapshot = self.take_snapshot(t);
        }
        self.predictor_eval(t);
    }

    /// Executes one tick incrementally: admits exactly the submitted
    /// `inbox` (which must be the next pods of the trace, in trace
    /// order, each at or past its arrival tick), runs the tick's
    /// scheduling round and physics, and returns the lifecycle events
    /// the tick produced.
    ///
    /// Ticks must be stepped in order starting from
    /// [`Simulator::next_step`] (the snapshot tick after a resume).
    /// Driving every tick with the pods whose arrival falls on it is
    /// bit-identical to [`Simulator::run`] — the batch loop is this
    /// method with the trace cursor as the inbox. Periodic
    /// checkpointing (`checkpoint_every`) applies here exactly as in
    /// the batch loop.
    pub fn step(&mut self, t: Tick, inbox: &[PodId]) -> Result<StepOutbox> {
        let entries: Vec<SubmitEntry> = inbox.iter().map(|&p| SubmitEntry::Submit(p)).collect();
        self.step_entries(t, &entries)
    }

    /// [`Simulator::step`] with a mixed submission channel: `Submit`
    /// entries go through the admission controller exactly as in
    /// `step`, `Deny` entries consume their trace slot into the
    /// `disconnected` ledger class (a serve front-end denying the
    /// unsubmitted pods of an evicted client connection). The combined
    /// stream must still cover the trace consecutively, each entry at
    /// or past its pod's arrival tick.
    pub fn step_entries(&mut self, t: Tick, inbox: &[SubmitEntry]) -> Result<StepOutbox> {
        if t != self.next_step {
            return Err(Error::InvalidConfig(format!(
                "step(tick {}) out of order: the engine is at tick {}",
                t.0, self.next_step.0
            )));
        }
        if t >= self.end_tick {
            return Err(Error::InvalidConfig(format!(
                "step(tick {}) past the window end ({})",
                t.0, self.end_tick.0
            )));
        }
        let _tick = optum_obs::span!("sim.tick");
        self.events_enabled = true;
        self.ev_placed.clear();
        self.ev_completed.clear();
        self.ev_evicted.clear();
        self.ev_shed.clear();
        self.ev_denied.clear();
        self.maybe_checkpoint(t)?;
        let (sub_be, sub_ls) = self.admit_entries(t, inbox)?;
        self.tick_tail(t, sub_be, sub_ls);
        self.next_step = t.next();
        Ok(StepOutbox {
            tick: t,
            placed: std::mem::take(&mut self.ev_placed),
            completed: std::mem::take(&mut self.ev_completed),
            evicted: std::mem::take(&mut self.ev_evicted),
            shed: std::mem::take(&mut self.ev_shed),
            denied: std::mem::take(&mut self.ev_denied),
        })
    }

    /// Finishes an incremental run: every tick of the window must have
    /// been stepped. Bit-identical to the tail of [`Simulator::run`].
    pub fn finish(self) -> Result<SimResult> {
        if self.next_step != self.end_tick {
            return Err(Error::InvalidConfig(format!(
                "finish() at tick {} but the window ends at {}; step the \
                 remaining ticks (with empty inboxes if no submissions are \
                 outstanding) before finishing",
                self.next_step.0, self.end_tick.0
            )));
        }
        self.into_result()
    }

    /// Next tick [`Simulator::step`] will execute.
    pub fn next_step(&self) -> Tick {
        self.next_step
    }

    /// End of the simulated window (exclusive).
    pub fn end_tick(&self) -> Tick {
        self.end_tick
    }

    /// Trace cursor: pods `0..next_arrival_index` have been admitted
    /// (or shed/throttled at admission). A serve front-end uses this to
    /// acknowledge duplicate submissions after a resume.
    pub fn next_arrival_index(&self) -> usize {
        self.next_arrival
    }

    /// Pods waiting in the pending queue.
    pub fn pending_depth(&self) -> usize {
        self.pending.len()
    }

    /// Pods currently placed and running.
    pub fn running_count(&self) -> usize {
        self.running.iter().filter(|s| s.is_some()).count()
    }

    /// The admission/overload ledger accumulated so far.
    pub fn overload_stats(&self) -> &OverloadStats {
        &self.overload
    }

    /// The outcome record of one pod (identity fields are always
    /// populated; lifecycle fields fill in as the run progresses).
    pub fn outcome(&self, pid: PodId) -> Option<&PodOutcome> {
        self.outcomes.get(pid.index())
    }

    /// Writes an on-demand checkpoint at the current step boundary
    /// (the `checkpoint` protocol verb). Requires `checkpoint_path`;
    /// returns the snapshot tick.
    pub fn checkpoint_now(&self) -> Result<Tick> {
        if self.config.checkpoint_path.is_none() {
            return Err(Error::InvalidConfig(
                "checkpoint_now requires checkpoint_path".into(),
            ));
        }
        self.write_checkpoint(self.next_step)?;
        Ok(self.next_step)
    }

    /// Finalizes censored outcomes and assembles the result (shared by
    /// the batch and incremental paths).
    fn into_result(mut self) -> Result<SimResult> {
        self.finalize(self.next_step);
        let training = if self.config.collect_training {
            Some(TrainingData {
                psi: std::mem::take(&mut self.psi_samples),
                ct: std::mem::take(&mut self.ct_samples),
                ero: self.apps.ero_table().clone(),
                triples: if self.config.collect_triple_ero {
                    Some(std::mem::take(&mut self.triple_ero))
                } else {
                    None
                },
                app_profiles: self.snapshot_profiles(),
            })
        } else {
            None
        };
        Ok(SimResult {
            scheduler: self.scheduler.name(),
            outcomes: self.outcomes,
            cluster_series: self.cluster_series,
            pod_series: self.pod_series,
            violations: self.violations,
            churn: self.churn,
            overload: self.overload,
            predictor_errors: self.eval_errors,
            training,
            node_snapshot: self.node_snapshot,
            end_tick: self.end_tick,
        })
    }

    fn take_snapshot(&self, t: Tick) -> Vec<crate::result::NodeSnapshot> {
        self.nodes
            .iter()
            .map(|n| crate::result::NodeSnapshot {
                node: n.spec.id,
                at: t,
                capacity: n.spec.capacity,
                requested: n.requested,
                limits: n.limits,
                usage: n.usage,
                pod_count: n.pod_count() as u32,
            })
            .collect()
    }

    fn snapshot_profiles(&self) -> Vec<AppUsageProfile> {
        (0..self.workload.apps.len())
            .map(|i| {
                let s = self.apps.get(optum_types::AppId(i as u32));
                AppUsageProfile {
                    seen: s.samples > 0,
                    p99_usage: s.p99().unwrap_or(Resources::ZERO),
                    max_cpu_util: s.max_cpu_util,
                    max_mem_util: s.max_mem_util,
                    mem_cov: s.mem_cov(),
                    max_qps_norm: s.max_qps_norm,
                }
            })
            .collect()
    }

    /// Position of an SLO class in the [`SloClass::ALL`] order (the
    /// layout of `class_depth` and [`OverloadStats::per_class`]).
    fn class_idx(slo: SloClass) -> usize {
        SloClass::ALL.iter().position(|&c| c == slo).unwrap_or(0)
    }

    /// BE-throttle threshold: 3/4 of the queue cap, at least one.
    fn high_water(cap: usize) -> usize {
        (cap / 4 * 3).max(1)
    }

    /// Pending-queue sort key: highest SLO priority first, FIFO within
    /// a class, pod id as a total tiebreak (total order, so a lazy
    /// re-sort reproduces the eager per-round sort bit-identically).
    fn queue_key(&self, id: PodId) -> (std::cmp::Reverse<u8>, Tick, PodId) {
        let spec = &self.workload.pods[id.index()].spec;
        (std::cmp::Reverse(spec.slo.priority()), spec.arrival, id)
    }

    /// Pushes onto the pending queue, clearing the sorted flag only
    /// when the push actually breaks the key order.
    fn queue_push(&mut self, pid: PodId) {
        if self.pending_sorted {
            if let Some(&last) = self.pending.last() {
                if self.queue_key(pid) < self.queue_key(last) {
                    self.pending_sorted = false;
                }
            }
        }
        self.pending.push(pid);
    }

    /// Re-sorts the pending queue if (and only if) it is dirty.
    fn ensure_sorted(&mut self) {
        if self.pending_sorted {
            return;
        }
        let workload = self.workload;
        self.pending.sort_by_key(|&id| {
            let spec = &workload.pods[id.index()].spec;
            (std::cmp::Reverse(spec.slo.priority()), spec.arrival, id)
        });
        self.pending_sorted = true;
    }

    /// Sheds a pod (at arrival or from the queue): records the shed
    /// tick and a censored waiting time, and settles the recovery
    /// bookkeeping a pending eviction would otherwise leave dangling.
    fn shed_pod(&mut self, pid: PodId, t: Tick) {
        let ev = self.evicted_at[pid.index()].take();
        let o = &mut self.outcomes[pid.index()];
        o.shed_at = Some(t);
        if o.placed_at.is_none() {
            o.wait_ticks = t.saturating_since(o.arrival);
        } else if let Some(ev) = ev {
            o.wait_ticks += t.saturating_since(ev);
        }
        let slo = o.slo;
        if self.fault_evicted[pid.index()] {
            // An evicted pod shed before re-placement permanently
            // failed its recovery (mirrors `finalize`).
            self.fault_evicted[pid.index()] = false;
            self.churn.class_mut(slo).failed += 1;
        }
        self.overload.class_mut(slo).shed += 1;
        if self.events_enabled {
            self.ev_shed.push(pid);
        }
        optum_obs::counter!("sim.shed");
    }

    /// Enforces the queue cap by shedding from the sorted back of the
    /// queue: lowest SLO priority first, newest arrival first within a
    /// class — an LSR pod is never shed while any BE pod is queued.
    fn enforce_queue_cap(&mut self, t: Tick) {
        let Some(cap) = self.config.queue_cap else {
            return;
        };
        if self.pending.len() <= cap {
            return;
        }
        self.ensure_sorted();
        while self.pending.len() > cap {
            let pid = self.pending.pop().expect("len > cap >= 0");
            let slo = self.outcomes[pid.index()].slo;
            self.class_depth[Self::class_idx(slo)] -= 1;
            // Shed pods were admitted; the admission ledger is net.
            self.overload.class_mut(slo).admitted -= 1;
            self.shed_pod(pid, t);
        }
    }

    /// Backpressure release: readmits throttled BE pods (oldest first)
    /// while the queue sits below the high-water mark.
    fn release_throttled(&mut self) {
        if let Some(cap) = self.config.queue_cap {
            if cap > 0 {
                let high = Self::high_water(cap);
                while !self.throttled.is_empty() && self.pending.len() < high {
                    let pid = self.throttled.pop_front().expect("non-empty");
                    self.queue_push(pid);
                    let slo = self.outcomes[pid.index()].slo;
                    self.class_depth[Self::class_idx(slo)] += 1;
                    let c = self.overload.class_mut(slo);
                    c.admitted += 1;
                    c.requeued += 1;
                }
            }
        }
    }

    /// Admits the pod at the trace cursor (advancing it) through the
    /// admission controller: shed on a degenerate cap, throttled for BE
    /// over the high-water mark, queued otherwise.
    fn admit_pod(&mut self, t: Tick, be: &mut usize, ls: &mut usize) {
        let pod = &self.workload.pods[self.next_arrival];
        let pid = pod.spec.id;
        let slo = pod.spec.slo;
        match slo {
            SloClass::Be => *be += 1,
            SloClass::Ls | SloClass::Lsr => *ls += 1,
            _ => {}
        }
        self.next_arrival += 1;
        self.overload.class_mut(slo).arrivals += 1;
        match self.config.queue_cap {
            // Degenerate cap: nothing is ever admitted.
            Some(0) => self.shed_pod(pid, t),
            Some(c) if slo == SloClass::Be && self.pending.len() >= Self::high_water(c) => {
                self.throttled.push_back(pid);
                optum_obs::counter!("sim.throttled");
            }
            _ => {
                self.queue_push(pid);
                self.class_depth[Self::class_idx(slo)] += 1;
                self.overload.class_mut(slo).admitted += 1;
            }
        }
    }

    /// Post-admission settlement: enforces the queue cap and records
    /// depth peaks, observed once per tick after admission settles
    /// (transient mid-round depths are not meaningful).
    fn settle_admission(&mut self, t: Tick) {
        self.enforce_queue_cap(t);
        if self.config.queue_cap.is_some() || self.config.decision_cost_budget.is_some() {
            for (i, &d) in self.class_depth.iter().enumerate() {
                let c = &mut self.overload.per_class[i];
                c.max_depth = c.max_depth.max(d);
            }
            self.overload.max_depth = self.overload.max_depth.max(self.pending.len() as u64);
            self.overload.throttled_peak = self
                .overload
                .throttled_peak
                .max(self.throttled.len() as u64);
        }
    }

    fn admit_arrivals(&mut self, t: Tick) -> (usize, usize) {
        let mut be = 0;
        let mut ls = 0;
        self.release_throttled();
        while self.next_arrival < self.workload.pods.len()
            && self.workload.pods[self.next_arrival].spec.arrival <= t
        {
            self.admit_pod(t, &mut be, &mut ls);
        }
        self.settle_admission(t);
        (be, ls)
    }

    /// Serve-mode admission: the inbox replaces the trace cursor's
    /// arrival scan, but must agree with it — each entry must concern
    /// the next pod of the trace, submitted (or denied) at or after
    /// its arrival tick. Feeding every tick `Submit` entries for the
    /// pods whose arrival falls on it makes this bit-identical to
    /// [`Simulator::admit_arrivals`].
    fn admit_entries(&mut self, t: Tick, inbox: &[SubmitEntry]) -> Result<(usize, usize)> {
        let mut be = 0;
        let mut ls = 0;
        self.release_throttled();
        for &entry in inbox {
            let pid = entry.pod();
            let Some(pod) = self.workload.pods.get(self.next_arrival) else {
                return Err(Error::InvalidData(format!(
                    "submission of pod {} past the end of the trace ({} pods)",
                    pid.0,
                    self.workload.pods.len()
                )));
            };
            if pod.spec.id != pid {
                return Err(Error::InvalidData(format!(
                    "out-of-order submission: got pod {}, expected pod {} \
                     (submissions must follow trace order)",
                    pid.0, pod.spec.id.0
                )));
            }
            if pod.spec.arrival > t {
                return Err(Error::InvalidData(format!(
                    "pod {} submitted at tick {} before its arrival tick {}",
                    pid.0, t.0, pod.spec.arrival.0
                )));
            }
            match entry {
                SubmitEntry::Submit(_) => self.admit_pod(t, &mut be, &mut ls),
                SubmitEntry::Deny(_) => self.deny_pod(t),
            }
        }
        self.settle_admission(t);
        Ok((be, ls))
    }

    /// Denies the pod at the trace cursor: it counts as an arrival and
    /// lands in the `disconnected` ledger class with a censored waiting
    /// time, never entering the pending queue (mirrors
    /// [`Simulator::shed_pod`] for the denial class).
    fn deny_pod(&mut self, t: Tick) {
        let pod = &self.workload.pods[self.next_arrival];
        let pid = pod.spec.id;
        let slo = pod.spec.slo;
        self.next_arrival += 1;
        let c = self.overload.class_mut(slo);
        c.arrivals += 1;
        c.disconnected += 1;
        let o = &mut self.outcomes[pid.index()];
        o.disconnected_at = Some(t);
        o.wait_ticks = t.saturating_since(o.arrival);
        if self.events_enabled {
            self.ev_denied.push(pid);
        }
        optum_obs::counter!("sim.denied_disconnect");
    }

    fn tick_hook(&mut self, t: Tick, cost: &mut DecisionBudget) {
        let view = ClusterView {
            tick: t,
            nodes: &self.nodes,
            apps: &self.apps,
            cluster: &self.config.cluster,
            history_window: self.config.history_window,
            affinity: &self.affinity_fractions,
        };
        self.scheduler.on_tick_budgeted(&view, cost);
    }

    /// Applies every fault event due at or before `t` (the plan is
    /// sorted, so a cursor walk suffices). Events are idempotent
    /// against the node's current lifecycle: a crash on a crashed node
    /// or a drain on a non-Up node is a no-op, so overlapping channels
    /// in a generated plan resolve deterministically (Down dominates
    /// Draining; an early recover cancels a pending drain's effect).
    fn apply_faults(&mut self, t: Tick) {
        while self.next_fault < self.faults.len() && self.faults[self.next_fault].at <= t {
            let ev = self.faults[self.next_fault];
            self.next_fault += 1;
            let ni = ev.node.index();
            if ni >= self.nodes.len() {
                continue;
            }
            match ev.kind {
                FaultKind::Crash => {
                    if self.nodes[ni].lifecycle != NodeLifecycle::Down {
                        self.churn.crashes += 1;
                        self.nodes[ni].lifecycle = NodeLifecycle::Down;
                        self.evict_all(ni, t, EvictKind::Crash);
                    }
                }
                FaultKind::Recover => {
                    if self.nodes[ni].lifecycle == NodeLifecycle::Down {
                        self.nodes[ni].lifecycle = NodeLifecycle::Up;
                    }
                }
                FaultKind::DrainStart => {
                    if self.nodes[ni].lifecycle == NodeLifecycle::Up {
                        self.churn.drains += 1;
                        self.nodes[ni].lifecycle = NodeLifecycle::Draining;
                        self.evict_all(ni, t, EvictKind::Drain);
                    }
                }
                FaultKind::DrainEnd => {
                    if self.nodes[ni].lifecycle == NodeLifecycle::Draining {
                        self.nodes[ni].lifecycle = NodeLifecycle::Up;
                    }
                }
                FaultKind::Degrade { factor } => {
                    self.churn.degradations += 1;
                    self.nodes[ni].degrade = factor.clamp(0.05, 1.0);
                }
                FaultKind::DegradeEnd => {
                    self.nodes[ni].degrade = 1.0;
                }
                FaultKind::PodKill { selector } => {
                    let node = &self.nodes[ni];
                    if !node.pods.is_empty() {
                        let idx = (selector % node.pods.len() as u64) as usize;
                        let victim = node.pods[idx].id;
                        self.churn.pod_kills += 1;
                        self.evict(victim, t, EvictKind::Kill);
                    }
                }
            }
        }
    }

    /// Evicts every resident pod of a node (crash or drain).
    fn evict_all(&mut self, node_idx: usize, t: Tick, kind: EvictKind) {
        while let Some(rp) = self.nodes[node_idx].pods.last() {
            let pid = rp.id;
            self.evict(pid, t, kind);
        }
    }

    fn schedule_round(&mut self, t: Tick, cost: &mut DecisionBudget) {
        if self.pending.is_empty() {
            return;
        }
        let _round = optum_obs::span!("sim.schedule_round");
        // Highest SLO priority first, FIFO within a class (lazily: the
        // queue is only re-sorted when a push broke the order).
        self.ensure_sorted();
        let mut budget = self.config.schedule_budget_per_tick;
        let mut decided = false;
        let mut starved = false;
        // Swap the queue with a persistent scratch buffer instead of
        // `mem::take`, so the capacity of both vectors survives the
        // tick and steady-state rounds allocate nothing.
        std::mem::swap(&mut self.pending, &mut self.pending_scratch);
        for k in 0..self.pending_scratch.len() {
            let pid = self.pending_scratch[k];
            // Restart backoff after a fault eviction: not offered to
            // the scheduler yet, and costs no budget.
            if self.not_before[pid.index()] > t {
                self.queue_push(pid);
                continue;
            }
            if budget == 0 {
                self.queue_push(pid);
                continue;
            }
            // Decision deadline: once the virtual-cost budget is
            // spent, the rest of the queue waits for the next tick.
            // The first decision of a round always runs even if it
            // overdraws, so a budget smaller than one decision still
            // makes progress every tick rather than livelocking.
            if cost.exhausted() && decided {
                starved = true;
                self.queue_push(pid);
                continue;
            }
            budget -= 1;
            decided = true;
            let spec = &self.workload.pods[pid.index()].spec;
            let view = ClusterView {
                tick: t,
                nodes: &self.nodes,
                apps: &self.apps,
                cluster: &self.config.cluster,
                history_window: self.config.history_window,
                affinity: &self.affinity_fractions,
            };
            // The span's histogram doubles as the per-decision
            // scheduling-latency distribution (fig22) in BENCH exports.
            let decision = {
                let _d = optum_obs::span!("sched.decide");
                self.scheduler.select_node_budgeted(spec, &view, cost)
            };
            match decision {
                Decision::Place(node) if node.index() < self.nodes.len() => {
                    if self.nodes[node.index()].is_schedulable() {
                        self.place(pid, node, t);
                    } else {
                        // Stale view: the target crashed or started
                        // draining after the scheduler last observed
                        // it. The decision is rejected and the pod
                        // goes through another scheduling round.
                        self.churn.stale_rejections += 1;
                        optum_obs::counter!("sim.stale_rejections");
                        self.outcomes[pid.index()].delay_cause = Some(DelayCause::Other);
                        self.queue_push(pid);
                    }
                }
                Decision::Place(_) => {
                    // A scheduler bug: out-of-range node. Treat as
                    // unplaceable rather than corrupting state.
                    self.outcomes[pid.index()].delay_cause = Some(optum_types::DelayCause::Other);
                    self.queue_push(pid);
                }
                Decision::Unplaceable(cause) => {
                    self.outcomes[pid.index()].delay_cause = Some(cause);
                    if spec.slo == SloClass::Lsr {
                        if let Some(node) = self.try_preempt_for(pid, t) {
                            self.place(pid, node, t);
                            continue;
                        }
                    }
                    self.queue_push(pid);
                }
            }
        }
        self.pending_scratch.clear();
        if starved {
            self.overload.budget_exhausted_rounds += 1;
            optum_obs::counter!("sim.budget_exhausted_rounds");
        }
    }

    /// Preempts BE pods to make room for an LSR pod (§3.1.3: LSR pods
    /// wait less than BE because the scheduler preempts BE for them).
    /// Returns the chosen node when preemption freed enough room.
    fn try_preempt_for(&mut self, pid: PodId, t: Tick) -> Option<NodeId> {
        let spec = &self.workload.pods[pid.index()].spec;
        let request = spec.request;
        let frac = self
            .affinity_fractions
            .get(spec.app.index())
            .copied()
            .unwrap_or(1.0);
        // Free room is measured against the over-commit budget the
        // production scheduler itself uses, not raw capacity.
        let kappa = self.config.preempt_request_cap;
        let budget_free = |node: &NodeRuntime| {
            // CPU follows the over-commit budget; memory stays
            // conservatively committed (the reference's asymmetry).
            let cap = node.spec.capacity;
            Resources::new(cap.cpu * kappa, cap.mem * 1.25).saturating_sub(&node.requested)
        };
        // Pick the node where evicting BE pods frees the most room:
        // maximal (budget-free + BE-requested), within affinity.
        let mut best: Option<(usize, f64)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.is_schedulable() {
                continue;
            }
            if !optum_trace::affinity_allows(spec.app.0, node.spec.id.0, frac) {
                continue;
            }
            let be_req: Resources = node
                .pods
                .iter()
                .filter(|p| p.slo == SloClass::Be)
                .map(|p| p.request)
                .sum();
            let after = budget_free(node) + be_req;
            if request.fits_within(&after) {
                let score = after.cpu + after.mem;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
        }
        let (node_idx, _) = best?;
        // Evict newest BE pods first until the request fits.
        loop {
            if request.fits_within(&budget_free(&self.nodes[node_idx])) {
                return Some(NodeId(node_idx as u32));
            }
            let victim = self.nodes[node_idx]
                .pods
                .iter()
                .rev()
                .find(|p| p.slo == SloClass::Be)
                .map(|p| p.id)?;
            self.evict(victim, t, EvictKind::Preempt);
        }
    }

    /// Removes a running pod from its node and requeues it. Progress
    /// survives according to the eviction kind: preemption and drains
    /// keep it (BE pods resume remaining work, long-running pods keep
    /// served wall-clock), crashes and kills restart from scratch.
    /// The eviction tick is recorded so waiting-time accounting
    /// restarts (re-placement and finalize charge the gap since `t`),
    /// and fault-driven kinds additionally arm a capped exponential
    /// restart backoff and feed the per-class recovery stats.
    fn evict(&mut self, pid: PodId, t: Tick, kind: EvictKind) {
        let Some(state) = self.running[pid.index()].take() else {
            return;
        };
        self.nodes[state.node.index()].remove_pod(pid);
        let slo = self.workload.pods[pid.index()].spec.slo;
        self.suspended_work[pid.index()] = if !kind.keeps_progress() {
            None
        } else if slo == SloClass::Be {
            Some(state.work_left)
        } else {
            // Long-running pods resume their remaining wall-clock
            // ticks (indefinite pods carry nothing).
            state.end_tick.and_then(|end| {
                if end.0 == u64::MAX {
                    None
                } else {
                    Some(end.saturating_since(t) as f64)
                }
            })
        };
        let outcome = &mut self.outcomes[pid.index()];
        let mut fault_count = 0u32;
        if kind.is_fault() {
            outcome.evictions += 1;
            outcome.delay_cause = Some(DelayCause::Eviction);
            fault_count = outcome.evictions;
            optum_obs::counter!("sim.evictions");
        } else {
            outcome.preemptions += 1;
            optum_obs::counter!("sim.preemptions");
        }
        outcome.node = None;
        // Carry performance peaks across the eviction.
        outcome.worst_psi = outcome.worst_psi.max(state.worst_psi);
        outcome.max_pod_cpu_util = outcome.max_pod_cpu_util.max(state.max_pod_cpu_util);
        outcome.max_pod_mem_util = outcome.max_pod_mem_util.max(state.max_pod_mem_util);
        outcome.max_host_cpu_util = outcome.max_host_cpu_util.max(state.max_host_cpu_util);
        outcome.max_host_mem_util = outcome.max_host_mem_util.max(state.max_host_mem_util);
        self.evicted_at[pid.index()] = Some(t);
        if kind.is_fault() {
            self.fault_evicted[pid.index()] = true;
            // Capped exponential backoff, doubling per eviction.
            let shift = fault_count.min(16) - 1;
            let backoff =
                (self.config.evict_backoff_base << shift).min(self.config.evict_backoff_cap);
            self.not_before[pid.index()] = Tick(t.0.saturating_add(backoff));
            self.churn.class_mut(slo).evictions += 1;
        }
        self.queue_push(pid);
        self.class_depth[Self::class_idx(slo)] += 1;
        if self.events_enabled {
            self.ev_evicted.push(pid);
        }
    }

    fn place(&mut self, pid: PodId, node: NodeId, t: Tick) {
        debug_assert!(
            self.running[pid.index()].is_none(),
            "pod must not be running and queued at once"
        );
        optum_obs::counter!("sim.placements");
        if self.events_enabled {
            self.ev_placed.push((pid, node));
        }
        if self.fault_evicted[pid.index()] {
            optum_obs::counter!("sim.reschedules");
        }
        // The pod leaves the pending queue (it was pulled out of this
        // round's scratch buffer, counted as queued until placed).
        let depth =
            &mut self.class_depth[Self::class_idx(self.workload.pods[pid.index()].spec.slo)];
        *depth = depth.saturating_sub(1);
        let gen = &self.workload.pods[pid.index()];
        let spec = &gen.spec;
        let rescheduled_after = self.evicted_at[pid.index()].take();
        if self.config.record_ranks {
            let (ru, rr) = self.ranks_of(node, spec.request);
            let outcome = &mut self.outcomes[pid.index()];
            if outcome.rank_by_usage.is_none() {
                outcome.rank_by_usage = Some(ru);
                outcome.rank_by_request = Some(rr);
            }
        }
        self.nodes[node.index()].add_pod(ResidentPod {
            id: pid,
            app: spec.app,
            slo: spec.slo,
            request: spec.request,
            limit: spec.limit,
            placed_at: t,
        });
        let duration = spec.nominal_duration.unwrap_or(u64::MAX);
        let is_be = spec.slo == SloClass::Be;
        // Suspended progress (preemption or drain) resumes; pods that
        // lost progress (crash/kill) restart their full duration.
        let work_left = if is_be {
            self.suspended_work[pid.index()]
                .take()
                .unwrap_or(duration as f64)
        } else {
            0.0
        };
        let end_tick = if is_be {
            None
        } else {
            let remaining = self.suspended_work[pid.index()]
                .take()
                .map(|w| w as u64)
                .unwrap_or(duration);
            Some(Tick(t.0.saturating_add(remaining)))
        };
        self.running[pid.index()] = Some(RunningState {
            node,
            end_tick,
            work_left,
            cpu_psi: PsiWindow::ZERO,
            mem_psi: PsiWindow::ZERO,
            worst_psi: 0.0,
            max_pod_cpu_util: 0.0,
            max_pod_mem_util: 0.0,
            max_host_cpu_util: 0.0,
            max_host_mem_util: 0.0,
            util_sum: Resources::ZERO,
            util_ticks: 0,
        });
        let outcome = &mut self.outcomes[pid.index()];
        outcome.node = Some(node);
        if outcome.placed_at.is_none() {
            // Waiting time counts from submission to first placement;
            // `placed_at` keeps the first start so completion durations
            // span preemptions.
            outcome.placed_at = Some(t);
            outcome.wait_ticks = t.saturating_since(spec.arrival);
        } else if let Some(ev) = rescheduled_after {
            // Re-placement after an eviction: waiting restarted at the
            // eviction tick and the reschedule gap is charged on top.
            outcome.wait_ticks += t.saturating_since(ev);
        }
        if self.fault_evicted[pid.index()] {
            self.fault_evicted[pid.index()] = false;
            let class = self.churn.class_mut(spec.slo);
            class.rescheduled += 1;
            if let Some(ev) = rescheduled_after {
                class.resched_ticks += t.saturating_since(ev);
            }
        }
        self.not_before[pid.index()] = Tick::ZERO;
    }

    /// Alignment-score ranks of the chosen node among all nodes, where
    /// the score is the inner product of the request with the host's
    /// usage (first) or requests (second) vector (Fig. 10; §3.2.1).
    fn ranks_of(&self, chosen: NodeId, request: Resources) -> (u32, u32) {
        let score_u = |n: &NodeRuntime| request.dot(&n.usage.div(&n.spec.capacity));
        let score_r = |n: &NodeRuntime| request.dot(&n.requested.div(&n.spec.capacity));
        let su = score_u(&self.nodes[chosen.index()]);
        let sr = score_r(&self.nodes[chosen.index()]);
        let mut rank_u = 1u32;
        let mut rank_r = 1u32;
        for n in &self.nodes {
            if score_u(n) > su {
                rank_u += 1;
            }
            if score_r(n) > sr {
                rank_r += 1;
            }
        }
        (rank_u, rank_r)
    }

    fn physics_pass(&mut self, t: Tick, sub_be: usize, sub_ls: usize) {
        let _physics = optum_obs::span!("sim.physics");
        let record_series = t.0.is_multiple_of(self.config.series_stride);
        let mut sum_cpu_util = 0.0;
        let mut sum_mem_util = 0.0;
        let mut max_cpu_util: f64 = 0.0;
        let mut max_mem_util: f64 = 0.0;
        let mut active_nodes = 0usize;
        let mut active_cpu_util = 0.0;
        let mut active_mem_util = 0.0;
        let mut be_util_sum = 0.0;
        let mut be_count = 0usize;
        let mut ls_util_sum = 0.0;
        let mut ls_count = 0usize;
        let mut ls_qps_sum = 0.0;
        let mut running_count = 0usize;
        let mut down_nodes = 0usize;
        // Reuse the completion buffer across ticks (borrowed out of
        // `self` so pushes can happen while `self.running` is borrowed).
        let mut completions = std::mem::take(&mut self.completion_scratch);
        debug_assert!(completions.is_empty());

        // Hoist the per-(app, tick) physics terms once: the diurnal
        // curve reads and app-level factor products are shared by
        // every pod of an app within this tick, and the cached
        // variants are bit-identical to the scalar physics.
        self.tick_terms_scratch.clear();
        self.tick_terms_scratch
            .extend(self.workload.apps.iter().map(|a| a.tick_terms(t)));

        for node_idx in 0..self.nodes.len() {
            // A down node contributes no capacity and hosts no pods;
            // it still pushes (zero) usage into its history so
            // predictors and schedulers see the outage, but it is
            // excluded from the violation denominator.
            if self.nodes[node_idx].lifecycle == NodeLifecycle::Down {
                self.churn.down_node_ticks += 1;
                down_nodes += 1;
                self.nodes[node_idx].push_usage(Resources::ZERO);
                continue;
            }
            // Pass 1: raw usage per resident pod.
            self.usage_scratch.clear();
            {
                let node = &self.nodes[node_idx];
                for rp in &node.pods {
                    let gen = &self.workload.pods[rp.id.index()];
                    let app = self.workload.app_of(gen);
                    let terms = &self.tick_terms_scratch[gen.spec.app.index()];
                    let usage = Resources::new(
                        app.pod_cpu_usage_cached(gen, t, terms),
                        app.pod_mem_usage_cached(gen, t, terms),
                    );
                    self.usage_scratch.push((rp.id, usage, terms.qps_norm));
                }
            }
            let raw: Resources = self.usage_scratch.iter().map(|(_, u, _)| *u).sum();
            let cap = self.nodes[node_idx].effective_capacity();
            self.violations.total_node_ticks += 1;
            let cpu_scale = if raw.cpu > cap.cpu {
                self.violations.cpu_node_ticks += 1;
                cap.cpu / raw.cpu
            } else {
                1.0
            };
            let mem_scale = if raw.mem > cap.mem {
                self.violations.mem_node_ticks += 1;
                cap.mem / raw.mem
            } else {
                1.0
            };
            let clamped = Resources::new(raw.cpu.min(cap.cpu), raw.mem.min(cap.mem));
            self.nodes[node_idx].push_usage(clamped);
            let host_util = clamped.div(&cap);
            sum_cpu_util += host_util.cpu;
            sum_mem_util += host_util.mem;
            max_cpu_util = max_cpu_util.max(host_util.cpu);
            max_mem_util = max_mem_util.max(host_util.mem);
            if !self.usage_scratch.is_empty() {
                active_nodes += 1;
                active_cpu_util += host_util.cpu;
                active_mem_util += host_util.mem;
            }
            running_count += self.usage_scratch.len();

            // Pass 2: per-pod performance, stats and training samples.
            // ERO observations feed both offline training and the live
            // profile source predictors read, so they are always on.
            let collect_ero = t.0.is_multiple_of(ERO_STRIDE);
            self.app_group_scratch.clear();
            // Node-level hoists: the memory-pressure base is
            // app-independent, and pods whose PSI sigmoids share
            // (beta, threshold) share the host-contention factor.
            let mem_psi_node_base = AppProfile::mem_psi_base(host_util.mem);
            self.contention_scratch.clear();
            for i in 0..self.usage_scratch.len() {
                let (pid, raw_usage, qps_norm) = self.usage_scratch[i];
                let usage = Resources::new(raw_usage.cpu * cpu_scale, raw_usage.mem * mem_scale);
                let gen = &self.workload.pods[pid.index()];
                let app = self.workload.app_of(gen);
                let request = gen.spec.request;
                let pod_cpu_util = if request.cpu > 0.0 {
                    usage.cpu / request.cpu
                } else {
                    0.0
                };
                let pod_mem_util = if request.mem > 0.0 {
                    usage.mem / request.mem
                } else {
                    0.0
                };
                self.apps.observe(gen.spec.app, usage, request, qps_norm);

                if collect_ero {
                    // Track the max-usage pod per app on this node.
                    match self
                        .app_group_scratch
                        .iter_mut()
                        .find(|(a, _, _)| *a == gen.spec.app.0)
                    {
                        Some(entry) => {
                            if usage.cpu > entry.1 {
                                entry.1 = usage.cpu;
                                entry.2 = request.cpu;
                            }
                        }
                        None => {
                            self.app_group_scratch
                                .push((gen.spec.app.0, usage.cpu, request.cpu))
                        }
                    }
                }

                let terms = self.tick_terms_scratch[gen.spec.app.index()];
                let is_ls = gen.spec.slo.is_latency_sensitive();
                let is_be = gen.spec.slo == SloClass::Be;
                if is_be {
                    be_util_sum += pod_cpu_util;
                    be_count += 1;
                } else if is_ls {
                    ls_util_sum += pod_cpu_util;
                    ls_count += 1;
                    ls_qps_sum += app.pod_qps_cached(pid, t, &terms);
                }

                let shape = self.psi_shapes[gen.spec.app.index()];
                let contention = match self.contention_scratch.iter().find(|(b, th, _)| {
                    *b == shape.beta.to_bits() && *th == shape.threshold.to_bits()
                }) {
                    Some(&(_, _, c)) => c,
                    None => {
                        let c = shape.contention(host_util.cpu);
                        self.contention_scratch.push((
                            shape.beta.to_bits(),
                            shape.threshold.to_bits(),
                            c,
                        ));
                        c
                    }
                };
                let state = self.running[pid.index()]
                    .as_mut()
                    .expect("resident pod must have running state");
                let psi_inst =
                    app.psi_instant_cached(pid, pod_cpu_util, &shape, contention, t, &terms);
                state.cpu_psi = PsiWindow::step(state.cpu_psi, psi_inst);
                let mem_psi_inst = app.mem_psi_instant_cached(pid, mem_psi_node_base, t);
                state.mem_psi = PsiWindow::step(state.mem_psi, mem_psi_inst);
                state.worst_psi = state.worst_psi.max(state.cpu_psi.avg60);
                state.max_pod_cpu_util = state.max_pod_cpu_util.max(pod_cpu_util);
                state.max_pod_mem_util = state.max_pod_mem_util.max(pod_mem_util);
                state.max_host_cpu_util = state.max_host_cpu_util.max(host_util.cpu);
                state.max_host_mem_util = state.max_host_mem_util.max(host_util.mem);
                state.util_sum += Resources::new(pod_cpu_util, pod_mem_util);
                state.util_ticks += 1;

                // Training samples, strided and phase-shifted per pod so
                // the dataset spans many pods without exploding.
                if self.config.collect_training
                    && is_ls
                    && (t.0 + pid.0 as u64).is_multiple_of(self.config.training_stride)
                {
                    self.psi_samples.push(PsiSample {
                        app: gen.spec.app,
                        pod_cpu_util,
                        pod_mem_util,
                        host_cpu_util: host_util.cpu,
                        host_mem_util: host_util.mem,
                        qps_norm,
                        psi: state.cpu_psi.avg60,
                    });
                }

                // Recorded series for sampled pods.
                if record_series && self.sampled[pid.index()] {
                    let rt = app.response_time(gen, state.cpu_psi.avg60, t);
                    let qps = app.pod_qps_cached(pid, t, &terms);
                    let noise = hash_noise(0xF00D, pid.0 as u64, t.0);
                    let (rx, tx) = if is_be {
                        (
                            gen.input_factor * usage.cpu * (0.8 + 0.4 * noise),
                            gen.input_factor * usage.cpu * 0.3,
                        )
                    } else {
                        (qps * 0.01 * (0.9 + 0.2 * noise), qps * 0.004)
                    };
                    let slot = self.series_slot[pid.index()];
                    debug_assert!(slot != usize::MAX, "sampled pod must have a series slot");
                    self.pod_series[slot].1.push(PodPoint {
                        tick: t,
                        usage,
                        cpu_psi: state.cpu_psi,
                        mem_psi: state.mem_psi,
                        qps,
                        response_time: rt,
                        host_cpu_util: host_util.cpu,
                        host_mem_util: host_util.mem,
                        rx,
                        tx,
                    });
                }

                // Progress and completion.
                if is_be {
                    state.work_left -= app.be_progress_rate(host_util.cpu, host_util.mem);
                    if state.work_left <= 0.0 {
                        completions.push((pid, node_idx));
                    }
                } else if state.end_tick == Some(t) {
                    completions.push((pid, node_idx));
                }
            }

            if collect_ero {
                for i in 0..self.app_group_scratch.len() {
                    for j in (i + 1)..self.app_group_scratch.len() {
                        let (a, ua, ra) = self.app_group_scratch[i];
                        let (b, ub, rb) = self.app_group_scratch[j];
                        if ra + rb > 0.0 {
                            self.apps.observe_pair(
                                optum_types::AppId(a),
                                optum_types::AppId(b),
                                (ua + ub) / (ra + rb),
                            );
                        }
                    }
                }
                if self.config.collect_triple_ero && t.0.is_multiple_of(TRIPLE_ERO_STRIDE) {
                    let g = &self.app_group_scratch;
                    for i in 0..g.len() {
                        for j in (i + 1)..g.len() {
                            for k in (j + 1)..g.len() {
                                let denom = g[i].2 + g[j].2 + g[k].2;
                                if denom > 0.0 {
                                    self.triple_ero.observe(
                                        optum_types::AppId(g[i].0),
                                        optum_types::AppId(g[j].0),
                                        optum_types::AppId(g[k].0),
                                        (g[i].1 + g[j].1 + g[k].1) / denom,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        for &(pid, node_idx) in &completions {
            self.complete(pid, node_idx, t);
        }
        completions.clear();
        self.completion_scratch = completions;

        if record_series {
            let n = self.nodes.len() as f64;
            let active = active_nodes.max(1) as f64;
            self.cluster_series.push(ClusterTickStats {
                tick: t,
                mean_cpu_util: sum_cpu_util / n,
                max_cpu_util,
                mean_mem_util: sum_mem_util / n,
                max_mem_util,
                active_nodes,
                mean_cpu_util_active: active_cpu_util / active,
                mean_mem_util_active: active_mem_util / active,
                pending: self.pending.len(),
                running: running_count,
                submitted_be: sub_be,
                submitted_ls: sub_ls,
                mean_be_pod_util: if be_count > 0 {
                    be_util_sum / be_count as f64
                } else {
                    0.0
                },
                mean_ls_pod_util: if ls_count > 0 {
                    ls_util_sum / ls_count as f64
                } else {
                    0.0
                },
                mean_ls_qps: if ls_count > 0 {
                    ls_qps_sum / ls_count as f64
                } else {
                    0.0
                },
                down_nodes,
            });
        }
    }

    fn complete(&mut self, pid: PodId, node_idx: usize, t: Tick) {
        let Some(state) = self.running[pid.index()].take() else {
            return;
        };
        self.nodes[node_idx].remove_pod(pid);
        if self.events_enabled {
            self.ev_completed.push(pid);
        }
        let gen = &self.workload.pods[pid.index()];
        let outcome = &mut self.outcomes[pid.index()];
        outcome.completed_at = Some(t);
        if let Some(placed) = outcome.placed_at {
            outcome.actual_duration = Some(t.saturating_since(placed) + 1);
        }
        outcome.worst_psi = outcome.worst_psi.max(state.worst_psi);
        outcome.max_pod_cpu_util = outcome.max_pod_cpu_util.max(state.max_pod_cpu_util);
        outcome.max_pod_mem_util = outcome.max_pod_mem_util.max(state.max_pod_mem_util);
        outcome.max_host_cpu_util = outcome.max_host_cpu_util.max(state.max_host_cpu_util);
        outcome.max_host_mem_util = outcome.max_host_mem_util.max(state.max_host_mem_util);
        if state.util_ticks > 0 {
            let mean = state.util_sum.scale(1.0 / state.util_ticks as f64);
            outcome.mean_pod_cpu_util = mean.cpu;
            outcome.mean_pod_mem_util = mean.mem;
        }

        // Completion-time training sample for BE pods.
        if self.config.collect_training && gen.spec.slo == SloClass::Be {
            if let (Some(actual), nominal) = (outcome.actual_duration, outcome.nominal_duration) {
                if nominal > 0 {
                    self.ct_samples.push(CtSample {
                        app: gen.spec.app,
                        max_pod_cpu_util: outcome.max_pod_cpu_util,
                        max_pod_mem_util: outcome.max_pod_mem_util,
                        max_host_cpu_util: outcome.max_host_cpu_util,
                        max_host_mem_util: outcome.max_host_mem_util,
                        ct_norm: normalize_ct(nominal, actual),
                    });
                }
            }
        }
    }

    fn predictor_eval(&mut self, t: Tick) {
        let Some(eval) = &self.config.predictor_eval else {
            return;
        };
        // Update peaks of open points.
        for p in &mut self.eval_points {
            p.peak = p.peak.max(&self.nodes[p.node].usage);
        }
        // Resolve matured points.
        let mut i = 0;
        while i < self.eval_points.len() {
            if self.eval_points[i].matures <= t {
                let p = self.eval_points.swap_remove(i);
                for (k, pred) in p.predictions.iter().enumerate() {
                    self.eval_errors[k].1.record(pred.cpu, p.peak.cpu);
                }
            } else {
                i += 1;
            }
        }
        // Issue new points on the stride, after the warm-up window.
        if t.0 < eval.warmup.max(1) || !t.0.is_multiple_of(eval.stride) {
            return;
        }
        let view = ClusterView {
            tick: t,
            nodes: &self.nodes,
            apps: &self.apps,
            cluster: &self.config.cluster,
            history_window: self.config.history_window,
            affinity: &self.affinity_fractions,
        };
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.pods.is_empty() {
                continue;
            }
            let obs = view.observation(node);
            let predictions: Vec<Resources> = eval
                .predictors
                .iter()
                .map(|p| p.predict(&obs, self.apps_ref()))
                .collect();
            self.eval_points.push(EvalPoint {
                node: idx,
                matures: Tick(t.0 + eval.horizon),
                predictions,
                peak: node.usage,
            });
        }
    }

    fn apps_ref(&self) -> &AppStatsStore {
        &self.apps
    }

    fn finalize(&mut self, end: Tick) {
        // Pods still pending: censored waiting times. A never-placed
        // pod waits from arrival; an evicted, never re-placed pod
        // additionally waits from its eviction (and counts as failed
        // in the per-class recovery stats when the eviction was
        // fault-driven).
        for k in 0..self.pending.len() {
            let pid = self.pending[k];
            let ev = self.evicted_at[pid.index()];
            let o = &mut self.outcomes[pid.index()];
            if o.placed_at.is_none() {
                o.wait_ticks = end.saturating_since(o.arrival);
            } else if let Some(ev) = ev {
                o.wait_ticks += end.saturating_since(ev);
            }
            if self.fault_evicted[pid.index()] {
                self.fault_evicted[pid.index()] = false;
                let slo = self.outcomes[pid.index()].slo;
                self.churn.class_mut(slo).failed += 1;
            }
        }
        // Pods still in the BE throttle buffer: never admitted, so
        // they wait (censored) from arrival to the end of the run.
        for k in 0..self.throttled.len() {
            let pid = self.throttled[k];
            let o = &mut self.outcomes[pid.index()];
            if o.placed_at.is_none() {
                o.wait_ticks = end.saturating_since(o.arrival);
            }
            let slo = o.slo;
            self.overload.class_mut(slo).throttled_end += 1;
        }
        // Pods still running: flush their peaks into outcomes.
        for pid in 0..self.running.len() {
            if let Some(state) = self.running[pid].take() {
                let o = &mut self.outcomes[pid];
                o.worst_psi = o.worst_psi.max(state.worst_psi);
                o.max_pod_cpu_util = o.max_pod_cpu_util.max(state.max_pod_cpu_util);
                o.max_pod_mem_util = o.max_pod_mem_util.max(state.max_pod_mem_util);
                o.max_host_cpu_util = o.max_host_cpu_util.max(state.max_host_cpu_util);
                o.max_host_mem_util = o.max_host_mem_util.max(state.max_host_mem_util);
                if state.util_ticks > 0 {
                    let mean = state.util_sum.scale(1.0 / state.util_ticks as f64);
                    o.mean_pod_cpu_util = mean.cpu;
                    o.mean_pod_mem_util = mean.mem;
                }
            }
        }
    }

    // --- Checkpoint/restore -------------------------------------------

    /// Fingerprint binding a snapshot to this simulation configuration
    /// (cluster shape, strides, flags, fault plan, end tick).
    fn config_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.fold(self.config.cluster.node_count as u64);
        for n in self.config.cluster.nodes() {
            fp.fold(n.id.0 as u64);
            fp.fold_f64(n.capacity.cpu);
            fp.fold_f64(n.capacity.mem);
        }
        fp.fold(self.config.history_window as u64);
        fp.fold(self.config.schedule_budget_per_tick as u64);
        fp.fold(self.config.record_ranks as u64);
        fp.fold(self.config.collect_training as u64);
        fp.fold(self.config.collect_triple_ero as u64);
        fp.fold(self.config.training_stride);
        fp.fold(self.config.series_stride);
        fp.fold(self.config.pods_per_app_sampled as u64);
        fp.fold(self.end_tick.0);
        fp.fold(self.config.snapshot_tick.map(|t| t.0).unwrap_or(u64::MAX));
        fp.fold_f64(self.config.preempt_request_cap);
        fp.fold(self.config.evict_backoff_base);
        fp.fold(self.config.evict_backoff_cap);
        fp.fold(self.config.queue_cap.map(|c| c as u64).unwrap_or(u64::MAX));
        fp.fold(self.config.decision_cost_budget.unwrap_or(u64::MAX));
        fp.fold(self.faults.len() as u64);
        for ev in &self.faults {
            fp.fold(ev.at.0);
            fp.fold(ev.node.0 as u64);
            match ev.kind {
                FaultKind::Crash => fp.fold(0),
                FaultKind::Recover => fp.fold(1),
                FaultKind::DrainStart => fp.fold(2),
                FaultKind::DrainEnd => fp.fold(3),
                FaultKind::Degrade { factor } => {
                    fp.fold(4);
                    fp.fold_f64(factor);
                }
                FaultKind::DegradeEnd => fp.fold(5),
                FaultKind::PodKill { selector } => {
                    fp.fold(6);
                    fp.fold(selector);
                }
            }
        }
        fp.finish()
    }

    /// Fingerprint binding a snapshot to the exact workload.
    fn workload_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.fold(self.workload.config.window_ticks());
        fp.fold(self.workload.apps.len() as u64);
        for a in &self.workload.apps {
            fp.fold_f64(a.affinity_fraction);
        }
        fp.fold(self.workload.pods.len() as u64);
        for p in &self.workload.pods {
            let s = &p.spec;
            fp.fold(s.id.0 as u64);
            fp.fold(s.app.0 as u64);
            fp.fold(checkpoint::slo_code(s.slo));
            fp.fold_f64(s.request.cpu);
            fp.fold_f64(s.request.mem);
            fp.fold(s.arrival.0);
            fp.fold(s.nominal_duration.unwrap_or(u64::MAX));
        }
        fp.finish()
    }

    /// Serializes the complete mutable state at the top of tick `t`.
    fn snapshot_bytes(&self, t: Tick) -> Result<Vec<u8>> {
        let Some(sched_state) = self.scheduler.save_state() else {
            return Err(Error::InvalidConfig(format!(
                "scheduler '{}' does not support checkpointing (it exposes no \
                 serializable state); run without --checkpoint-every",
                self.scheduler.name()
            )));
        };
        let mut w = SnapWriter::new();
        w.put_magic();
        w.put_u64(SNAP_VERSION);
        w.put_u64(self.config_fingerprint());
        w.put_u64(self.workload_fingerprint());
        // Shard layout (v3+): shard count, fleet size, then each
        // half-open host range. Restore refuses a layout mismatch.
        let layout = self.config.effective_shard_layout();
        w.put_u64(layout.ranges.len() as u64);
        w.put_u64(layout.hosts as u64);
        for &(a, b) in &layout.ranges {
            w.put_u64(a as u64);
            w.put_u64(b as u64);
        }
        w.put_u64(t.0);
        w.put_str(&self.scheduler.name());
        w.put_bytes(&sched_state);
        // Cursors and queues.
        w.put_u64(self.next_arrival as u64);
        w.put_u64(self.next_fault as u64);
        w.put_u64(self.pending.len() as u64);
        for p in &self.pending {
            w.put_u64(p.0 as u64);
        }
        w.put_bool(self.pending_sorted);
        w.put_u64(self.throttled.len() as u64);
        for p in &self.throttled {
            w.put_u64(p.0 as u64);
        }
        // Cluster and application state.
        w.put_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            n.snap_save(&mut w);
        }
        self.apps.snap_save(&mut w);
        // Per-pod state (all vectors are indexed by pod id and sized
        // to the workload, so only the values are stored).
        w.put_u64(self.running.len() as u64);
        for state in &self.running {
            match state {
                Some(s) => {
                    w.put_u64(1);
                    s.snap_save(&mut w);
                }
                None => w.put_u64(0),
            }
        }
        for sw in &self.suspended_work {
            w.put_opt_f64(*sw);
        }
        for ev in &self.evicted_at {
            w.put_opt_u64(ev.map(|t| t.0));
        }
        for &f in &self.fault_evicted {
            w.put_bool(f);
        }
        for nb in &self.not_before {
            w.put_u64(nb.0);
        }
        // Outcome accumulators: only the fields the run mutates (the
        // identity fields are rebuilt from the workload on restore).
        for o in &self.outcomes {
            w.put_opt_u64(o.node.map(|n| n.0 as u64));
            w.put_opt_u64(o.placed_at.map(|t| t.0));
            w.put_u64(o.wait_ticks);
            w.put_opt_u64(o.delay_cause.map(checkpoint::delay_code));
            w.put_opt_u64(o.completed_at.map(|t| t.0));
            w.put_opt_u64(o.actual_duration);
            w.put_f64(o.worst_psi);
            w.put_f64(o.max_pod_cpu_util);
            w.put_f64(o.max_pod_mem_util);
            w.put_f64(o.max_host_cpu_util);
            w.put_f64(o.max_host_mem_util);
            w.put_f64(o.mean_pod_cpu_util);
            w.put_f64(o.mean_pod_mem_util);
            w.put_u64(o.preemptions as u64);
            w.put_u64(o.evictions as u64);
            w.put_opt_u64(o.rank_by_usage.map(u64::from));
            w.put_opt_u64(o.rank_by_request.map(u64::from));
            w.put_opt_u64(o.shed_at.map(|t| t.0));
            w.put_opt_u64(o.disconnected_at.map(|t| t.0));
        }
        self.churn.snap_save(&mut w);
        self.violations.snap_save(&mut w);
        self.overload.snap_save(&mut w);
        // Recorded series.
        w.put_u64(self.cluster_series.len() as u64);
        for s in &self.cluster_series {
            s.snap_save(&mut w);
        }
        w.put_u64(self.pod_series.len() as u64);
        for (pid, points) in &self.pod_series {
            w.put_u64(pid.0 as u64);
            w.put_u64(points.len() as u64);
            for p in points {
                p.snap_save(&mut w);
            }
        }
        // Training collections.
        w.put_u64(self.psi_samples.len() as u64);
        for s in &self.psi_samples {
            w.put_u64(s.app.0 as u64);
            w.put_f64(s.pod_cpu_util);
            w.put_f64(s.pod_mem_util);
            w.put_f64(s.host_cpu_util);
            w.put_f64(s.host_mem_util);
            w.put_f64(s.qps_norm);
            w.put_f64(s.psi);
        }
        w.put_u64(self.ct_samples.len() as u64);
        for s in &self.ct_samples {
            w.put_u64(s.app.0 as u64);
            w.put_f64(s.max_pod_cpu_util);
            w.put_f64(s.max_pod_mem_util);
            w.put_f64(s.max_host_cpu_util);
            w.put_f64(s.max_host_mem_util);
            w.put_f64(s.ct_norm);
        }
        self.triple_ero.snap_save(&mut w);
        w.put_u64(self.node_snapshot.len() as u64);
        for s in &self.node_snapshot {
            s.snap_save(&mut w);
        }
        Ok(w.finish_with_checksum())
    }

    /// Writes a crash-consistent checkpoint at the top of tick `t`.
    fn write_checkpoint(&self, t: Tick) -> Result<()> {
        let _span = optum_obs::span!("sim.checkpoint");
        let bytes = self.snapshot_bytes(t)?;
        let path = self
            .config
            .checkpoint_path
            .as_ref()
            .expect("validated in Simulator::new");
        checkpoint::write_snapshot_file(path, &bytes)?;
        optum_obs::counter!("sim.checkpoints");
        Ok(())
    }

    /// Restores snapshot bytes into this freshly built simulator.
    fn restore_from(&mut self, bytes: &[u8]) -> Result<()> {
        if self.config.predictor_eval.is_some() {
            return Err(Error::InvalidConfig(
                "cannot resume with predictor evaluation enabled: snapshots \
                 carry no evaluation points"
                    .into(),
            ));
        }
        let payload = checkpoint::verify_checksum(bytes)?;
        let mut r = SnapReader::new(payload);
        r.get_magic()?;
        let version = r.get_u64()?;
        if version != SNAP_VERSION {
            return Err(Error::InvalidData(format!(
                "snapshot format version {version} is not supported (expected {SNAP_VERSION})"
            )));
        }
        let cfg_fp = r.get_u64()?;
        if cfg_fp != self.config_fingerprint() {
            return Err(Error::InvalidData(
                "snapshot was taken under a different simulation configuration \
                 (cluster, strides, fault plan or end tick differ)"
                    .into(),
            ));
        }
        let wl_fp = r.get_u64()?;
        if wl_fp != self.workload_fingerprint() {
            return Err(Error::InvalidData(
                "snapshot was taken over a different workload".into(),
            ));
        }
        let shard_count = r.get_len()?;
        let snap_hosts = r.get_u64()? as usize;
        let mut snap_ranges = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let a = r.get_u64()?;
            let b = r.get_u64()?;
            snap_ranges.push((a as u32, b as u32));
        }
        let snap_layout = optum_types::ShardLayout {
            hosts: snap_hosts,
            ranges: snap_ranges,
        };
        let layout = self.config.effective_shard_layout();
        if snap_layout != layout {
            return Err(Error::InvalidData(format!(
                "snapshot was taken under shard layout {} but this run is \
                 configured for {}; resume with the original --shards value \
                 (or re-run from scratch under the new layout)",
                snap_layout.describe(),
                layout.describe()
            )));
        }
        let t = Tick(r.get_u64()?);
        if t >= self.end_tick {
            return Err(Error::InvalidData(format!(
                "snapshot tick {} is not before the configured end tick {}",
                t.0, self.end_tick.0
            )));
        }
        let sched_name = r.get_str()?;
        if sched_name != self.scheduler.name() {
            return Err(Error::InvalidData(format!(
                "snapshot was taken with scheduler '{sched_name}' but resuming \
                 with '{}'",
                self.scheduler.name()
            )));
        }
        let sched_state = r.get_bytes()?;
        self.scheduler.load_state(&sched_state)?;
        // Cursors and queues.
        self.next_arrival = r.get_u64()? as usize;
        self.next_fault = r.get_u64()? as usize;
        if self.next_arrival > self.workload.pods.len() || self.next_fault > self.faults.len() {
            return Err(Error::InvalidData(
                "snapshot corrupt: cursor beyond plan length".into(),
            ));
        }
        self.pending.clear();
        for _ in 0..r.get_len()? {
            self.pending.push(PodId(r.get_u64()? as u32));
        }
        self.pending_sorted = r.get_bool()?;
        self.throttled.clear();
        for _ in 0..r.get_len()? {
            self.throttled.push_back(PodId(r.get_u64()? as u32));
        }
        // Per-class queue depths are derived state: rebuild them from
        // the restored queue instead of serializing them.
        self.class_depth = [0; SloClass::ALL.len()];
        for k in 0..self.pending.len() {
            let pid = self.pending[k];
            if pid.index() >= self.workload.pods.len() {
                return Err(Error::InvalidData(
                    "snapshot corrupt: pending pod id out of range".into(),
                ));
            }
            let slo = self.workload.pods[pid.index()].spec.slo;
            self.class_depth[Self::class_idx(slo)] += 1;
        }
        // Cluster and application state.
        let n_nodes = r.get_len()?;
        if n_nodes != self.nodes.len() {
            return Err(Error::InvalidData(format!(
                "snapshot covers {n_nodes} nodes but the cluster has {}",
                self.nodes.len()
            )));
        }
        for i in 0..n_nodes {
            let spec = self.nodes[i].spec;
            self.nodes[i] = NodeRuntime::snap_load(spec, self.config.history_window, &mut r)?;
        }
        self.apps = AppStatsStore::snap_load(self.workload.apps.len(), &mut r)?;
        // Per-pod state.
        let n_pods = self.workload.pods.len();
        let n_running = r.get_len()?;
        if n_running != n_pods {
            return Err(Error::InvalidData(format!(
                "snapshot covers {n_running} pods but the workload has {n_pods}"
            )));
        }
        for slot in self.running.iter_mut() {
            *slot = if r.get_u64()? != 0 {
                Some(RunningState::snap_load(&mut r)?)
            } else {
                None
            };
        }
        for slot in self.suspended_work.iter_mut() {
            *slot = r.get_opt_f64()?;
        }
        for slot in self.evicted_at.iter_mut() {
            *slot = r.get_opt_u64()?.map(Tick);
        }
        for slot in self.fault_evicted.iter_mut() {
            *slot = r.get_bool()?;
        }
        for slot in self.not_before.iter_mut() {
            *slot = Tick(r.get_u64()?);
        }
        for o in self.outcomes.iter_mut() {
            o.node = r.get_opt_u64()?.map(|n| NodeId(n as u32));
            o.placed_at = r.get_opt_u64()?.map(Tick);
            o.wait_ticks = r.get_u64()?;
            o.delay_cause = match r.get_opt_u64()? {
                Some(code) => Some(checkpoint::delay_from(code)?),
                None => None,
            };
            o.completed_at = r.get_opt_u64()?.map(Tick);
            o.actual_duration = r.get_opt_u64()?;
            o.worst_psi = r.get_f64()?;
            o.max_pod_cpu_util = r.get_f64()?;
            o.max_pod_mem_util = r.get_f64()?;
            o.max_host_cpu_util = r.get_f64()?;
            o.max_host_mem_util = r.get_f64()?;
            o.mean_pod_cpu_util = r.get_f64()?;
            o.mean_pod_mem_util = r.get_f64()?;
            o.preemptions = r.get_u64()? as u32;
            o.evictions = r.get_u64()? as u32;
            o.rank_by_usage = r.get_opt_u64()?.map(|x| x as u32);
            o.rank_by_request = r.get_opt_u64()?.map(|x| x as u32);
            o.shed_at = r.get_opt_u64()?.map(Tick);
            o.disconnected_at = r.get_opt_u64()?.map(Tick);
        }
        self.churn = ChurnStats::snap_load(&mut r)?;
        self.violations = ViolationStats::snap_load(&mut r)?;
        self.overload = OverloadStats::snap_load(&mut r)?;
        // Recorded series.
        self.cluster_series.clear();
        for _ in 0..r.get_len()? {
            self.cluster_series
                .push(ClusterTickStats::snap_load(&mut r)?);
        }
        let n_series = r.get_len()?;
        if n_series != self.pod_series.len() {
            return Err(Error::InvalidData(format!(
                "snapshot records {n_series} pod series but sampling \
                 configuration yields {}",
                self.pod_series.len()
            )));
        }
        for (pid, points) in self.pod_series.iter_mut() {
            let saved = PodId(r.get_u64()? as u32);
            if saved != *pid {
                return Err(Error::InvalidData(format!(
                    "snapshot series pod {} does not match expected {}",
                    saved.0, pid.0
                )));
            }
            points.clear();
            for _ in 0..r.get_len()? {
                points.push(PodPoint::snap_load(&mut r)?);
            }
        }
        // Training collections.
        self.psi_samples.clear();
        for _ in 0..r.get_len()? {
            self.psi_samples.push(PsiSample {
                app: optum_types::AppId(r.get_u64()? as u32),
                pod_cpu_util: r.get_f64()?,
                pod_mem_util: r.get_f64()?,
                host_cpu_util: r.get_f64()?,
                host_mem_util: r.get_f64()?,
                qps_norm: r.get_f64()?,
                psi: r.get_f64()?,
            });
        }
        self.ct_samples.clear();
        for _ in 0..r.get_len()? {
            self.ct_samples.push(CtSample {
                app: optum_types::AppId(r.get_u64()? as u32),
                max_pod_cpu_util: r.get_f64()?,
                max_pod_mem_util: r.get_f64()?,
                max_host_cpu_util: r.get_f64()?,
                max_host_mem_util: r.get_f64()?,
                ct_norm: r.get_f64()?,
            });
        }
        self.triple_ero = TripleEroTable::snap_load(&mut r)?;
        self.node_snapshot.clear();
        for _ in 0..r.get_len()? {
            self.node_snapshot
                .push(crate::result::NodeSnapshot::snap_load(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(Error::InvalidData(format!(
                "snapshot corrupt: {} unread trailing bytes",
                r.remaining()
            )));
        }
        self.start_tick = t;
        self.next_step = t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Decision, Scheduler};
    use optum_trace::{generate, WorkloadConfig};
    use optum_types::{DelayCause, PodSpec};

    /// First-fit by requests against raw capacity (no over-commit).
    struct FirstFit;

    impl Scheduler for FirstFit {
        fn name(&self) -> String {
            "first-fit".into()
        }

        fn select_node(&mut self, pod: &PodSpec, view: &ClusterView<'_>) -> Decision {
            for node in view.nodes {
                if pod.request.fits_within(&node.free_by_request()) {
                    return Decision::Place(node.spec.id);
                }
            }
            Decision::Unplaceable(DelayCause::CpuAndMemory)
        }

        // Stateless, hence trivially checkpointable.
        fn save_state(&self) -> Option<Vec<u8>> {
            Some(Vec::new())
        }

        fn load_state(&mut self, _state: &[u8]) -> optum_types::Result<()> {
            Ok(())
        }
    }

    /// A scheduler that always declines, to exercise waiting paths.
    struct Refuser;

    impl Scheduler for Refuser {
        fn name(&self) -> String {
            "refuser".into()
        }

        fn select_node(&mut self, _pod: &PodSpec, _view: &ClusterView<'_>) -> Decision {
            Decision::Unplaceable(DelayCause::Other)
        }
    }

    /// One shared simulation run (several tests assert on different
    /// aspects of the same result; rerunning it per test is wasteful).
    fn small_run() -> &'static SimResult {
        use std::sync::OnceLock;
        static RESULT: OnceLock<SimResult> = OnceLock::new();
        RESULT.get_or_init(|| {
            let w = generate(&WorkloadConfig::small(7)).unwrap();
            let mut cfg = SimConfig::new(40);
            cfg.record_ranks = true;
            cfg.collect_training = true;
            crate::run(&w, FirstFit, cfg).unwrap()
        })
    }

    #[test]
    fn runs_to_completion_and_places_pods() {
        let r = small_run();
        assert_eq!(r.scheduler, "first-fit");
        assert!(
            r.placement_rate() > 0.5,
            "placement rate {}",
            r.placement_rate()
        );
        // Some pods complete inside the window.
        assert!(r.outcomes.iter().any(|o| o.completed_at.is_some()));
        // Utilization is positive and bounded.
        let mean = r.mean_cpu_utilization();
        assert!(mean > 0.01 && mean < 1.0, "mean cpu util {mean}");
    }

    #[test]
    fn deterministic() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let r1 = crate::run(&w, FirstFit, SimConfig::new(40)).unwrap();
        let r2 = crate::run(&w, FirstFit, SimConfig::new(40)).unwrap();
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(r1.violations, r2.violations);
    }

    #[test]
    fn refusing_scheduler_places_nothing_but_lsr_preempts() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let r = crate::run(&w, Refuser, SimConfig::new(40)).unwrap();
        // No BE pods can be preempted onto nodes (nothing is placed),
        // so nothing at all should run.
        assert_eq!(
            r.outcomes
                .iter()
                .filter(|o| o.scheduled() && o.slo != SloClass::Lsr)
                .count(),
            0
        );
        // Every unplaced pod accumulated (censored) waiting time.
        let unplaced = r.outcomes.iter().find(|o| !o.scheduled()).unwrap();
        assert!(unplaced.wait_ticks > 0);
        assert_eq!(unplaced.delay_cause, Some(DelayCause::Other));
    }

    #[test]
    fn be_completion_times_inflate_under_contention() {
        let r = small_run();
        let inflations: Vec<f64> = r
            .outcomes_of(SloClass::Be)
            .filter_map(|o| o.inflation())
            .collect();
        assert!(!inflations.is_empty());
        // Inflation is never negative (work cannot run faster than nominal).
        assert!(inflations.iter().all(|&x| x >= -1e-9));
    }

    #[test]
    fn training_data_collected() {
        let r = small_run();
        let t = r.training.as_ref().unwrap();
        assert!(!t.psi.is_empty(), "no PSI samples");
        assert!(!t.ct.is_empty(), "no CT samples");
        assert!(t.ero.observed_pairs() > 0, "no ERO observations");
        assert!(t.app_profiles.iter().any(|p| p.seen));
        // PSI samples are in-range.
        assert!(t.psi.iter().all(|s| (0.0..=1.0).contains(&s.psi)));
        assert!(t.ct.iter().all(|s| (0.0..=1.0).contains(&s.ct_norm)));
    }

    #[test]
    fn ranks_recorded_when_enabled() {
        let r = small_run();
        let with_ranks = r
            .outcomes
            .iter()
            .filter(|o| o.rank_by_usage.is_some())
            .count();
        assert!(with_ranks > 0);
        for o in &r.outcomes {
            if let Some(rank) = o.rank_by_usage {
                assert!(rank >= 1 && rank as usize <= 40);
            }
        }
    }

    #[test]
    fn series_recorded_on_stride() {
        let r = small_run();
        assert!(!r.cluster_series.is_empty());
        // Strided: roughly window / stride entries.
        let expected = (r.end_tick.0 / 10) as usize;
        assert!(r.cluster_series.len() >= expected.saturating_sub(2));
        assert!(!r.pod_series.is_empty());
        assert!(r.pod_series.iter().any(|(_, s)| !s.is_empty()));
    }

    #[test]
    fn predictor_eval_scores_points() {
        use optum_predictors::{BorgDefault, NSigma};
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.predictor_eval = Some(crate::config::PredictorEval {
            predictors: vec![
                Box::new(BorgDefault::production()),
                Box::new(NSigma::production()),
            ],
            stride: 120,
            horizon: 120,
            warmup: 120,
        });
        let r = crate::run(&w, FirstFit, cfg).unwrap();
        assert_eq!(r.predictor_errors.len(), 2);
        let (name, errs) = &r.predictor_errors[0];
        assert_eq!(name, "Borg default");
        assert!(errs.len() > 10, "too few eval points: {}", errs.len());
        // Borg default over-estimates massively on this workload
        // (requests are ~5x usage).
        assert!(errs.over.len() > errs.under.len());
    }

    #[test]
    fn violations_counted() {
        let r = small_run();
        assert!(r.violations.total_node_ticks > 0);
        assert!(r.violations.rate() <= 1.0);
    }

    fn snap_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("optum-{}-{name}.snap", std::process::id()))
    }

    fn checkpointing_config(hosts: usize, path: &std::path::Path) -> SimConfig {
        let mut cfg = SimConfig::new(hosts);
        cfg.record_ranks = true;
        cfg.collect_training = true;
        cfg.checkpoint_every = Some(250);
        cfg.checkpoint_path = Some(path.to_path_buf());
        cfg
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let path = snap_path("roundtrip");
        let w = generate(&WorkloadConfig::small(7)).unwrap();

        let mut base_cfg = SimConfig::new(40);
        base_cfg.record_ranks = true;
        base_cfg.collect_training = true;
        let baseline = crate::run(&w, FirstFit, base_cfg).unwrap();

        // Checkpointed run: write snapshots along the way, then throw
        // the result away (simulating a crash after the last snapshot).
        let interrupted = crate::run(&w, FirstFit, checkpointing_config(40, &path)).unwrap();
        assert_eq!(interrupted.outcomes, baseline.outcomes);

        // Resume from the last snapshot under a fresh simulator.
        let bytes = crate::checkpoint::read_snapshot_file(&path).unwrap();
        let mut resume_cfg = SimConfig::new(40);
        resume_cfg.record_ranks = true;
        resume_cfg.collect_training = true;
        let resumed = Simulator::resume(&w, FirstFit, resume_cfg, &bytes)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(resumed.outcomes, baseline.outcomes);
        assert_eq!(resumed.violations, baseline.violations);
        assert_eq!(resumed.churn, baseline.churn);
        assert_eq!(resumed.cluster_series, baseline.cluster_series);
        assert_eq!(resumed.pod_series, baseline.pod_series);
        let (bt, rt) = (
            baseline.training.as_ref().unwrap(),
            resumed.training.as_ref().unwrap(),
        );
        assert_eq!(bt.psi, rt.psi);
        assert_eq!(bt.ct, rt.ct);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_checkpointable_scheduler_reports_clear_error() {
        let path = snap_path("refuser");
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let err = crate::run(&w, Refuser, checkpointing_config(40, &path))
            .err()
            .unwrap();
        let msg = err.to_string();
        assert!(msg.contains("refuser"), "unexpected error: {msg}");
        assert!(msg.contains("checkpoint"), "unexpected error: {msg}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rejects_different_workload() {
        let path = snap_path("fingerprint");
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        crate::run(&w, FirstFit, checkpointing_config(40, &path)).unwrap();
        let bytes = crate::checkpoint::read_snapshot_file(&path).unwrap();

        let other = generate(&WorkloadConfig::small(8)).unwrap();
        let err = Simulator::resume(&other, FirstFit, checkpointing_config(40, &path), &bytes)
            .err()
            .unwrap();
        assert!(
            err.to_string().contains("different workload"),
            "unexpected error: {err}"
        );

        // A different cluster is caught by the configuration fingerprint.
        let err = Simulator::resume(&w, FirstFit, checkpointing_config(41, &path), &bytes)
            .err()
            .unwrap();
        assert!(
            err.to_string()
                .contains("different simulation configuration"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_snapshot_fails_without_panicking() {
        let path = snap_path("truncated");
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        crate::run(&w, FirstFit, checkpointing_config(40, &path)).unwrap();
        let bytes = crate::checkpoint::read_snapshot_file(&path).unwrap();

        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let res = Simulator::resume(&w, FirstFit, SimConfig::new(40), &bytes[..cut]);
            assert!(res.is_err(), "truncation at {cut} bytes was accepted");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_config_is_validated() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.checkpoint_every = Some(100);
        assert!(Simulator::new(&w, FirstFit, cfg).is_err());

        let mut cfg = SimConfig::new(40);
        cfg.checkpoint_every = Some(0);
        cfg.checkpoint_path = Some(snap_path("zero"));
        assert!(Simulator::new(&w, FirstFit, cfg).is_err());
    }

    // --- Overload protection ------------------------------------------

    #[test]
    fn queue_cap_zero_sheds_every_arrival() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.queue_cap = Some(0);
        let r = crate::run(&w, FirstFit, cfg).unwrap();
        // Nothing is ever admitted, so nothing runs and every arrival
        // is shed at the door (no throttling under a zero cap).
        assert!(r.outcomes.iter().all(|o| o.placed_at.is_none()));
        assert!(r.overload.conserved(), "{:?}", r.overload);
        let arrivals: u64 = r.overload.per_class.iter().map(|c| c.arrivals).sum();
        assert!(arrivals > 0);
        assert_eq!(r.overload.total_shed(), arrivals);
        for c in &r.overload.per_class {
            assert_eq!(c.admitted, 0);
            assert_eq!(c.throttled_end, 0);
        }
        // Shed pods carry a shed tick and a censored waiting time of
        // zero (shed at the arrival tick).
        let shed = r.outcomes.iter().find(|o| o.shed_at.is_some()).unwrap();
        assert_eq!(shed.shed_at, Some(shed.arrival));
        assert_eq!(shed.wait_ticks, 0);
    }

    #[test]
    fn bounded_queue_sheds_lowest_priority_newest_first() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.queue_cap = Some(8);
        // A refusing scheduler keeps the queue permanently over the
        // cap, exercising the shed path continuously.
        let r = crate::run(&w, Refuser, cfg).unwrap();
        assert!(r.overload.conserved(), "{:?}", r.overload);
        assert!(r.overload.total_shed() > 0);
        assert_eq!(r.overload.max_depth as usize, 8);
        // Shedding strictly respects SLO priority: BE is always hit
        // at least as hard as LS, and LS at least as hard as LSR.
        let be = r.overload.class(SloClass::Be);
        let ls = r.overload.class(SloClass::Ls);
        let lsr = r.overload.class(SloClass::Lsr);
        assert!(be.shed_rate() >= ls.shed_rate(), "{be:?} vs {ls:?}");
        assert!(ls.shed_rate() >= lsr.shed_rate(), "{ls:?} vs {lsr:?}");
    }

    #[test]
    fn non_binding_overload_limits_do_not_change_outcomes() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let baseline = crate::run(&w, FirstFit, SimConfig::new(40)).unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.queue_cap = Some(usize::MAX / 2);
        cfg.decision_cost_budget = Some(u64::MAX / 2);
        let r = crate::run(&w, FirstFit, cfg).unwrap();
        assert_eq!(r.outcomes, baseline.outcomes);
        assert_eq!(r.violations, baseline.violations);
        assert!(r.overload.conserved());
        assert_eq!(r.overload.total_shed(), 0);
        assert_eq!(r.overload.budget_exhausted_rounds, 0);
    }

    #[test]
    fn tiny_decision_budget_progresses_without_livelock() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut cfg = SimConfig::new(40);
        // Far below one full host scan (40 units): no decision "fits",
        // yet the first decision of every round is still allowed, so
        // the queue drains one pod per tick instead of livelocking.
        cfg.decision_cost_budget = Some(1);
        let r = crate::run(&w, FirstFit, cfg).unwrap();
        assert!(r.overload.budget_exhausted_rounds > 0);
        assert!(
            r.outcomes.iter().filter(|o| o.scheduled()).count() > 100,
            "starved scheduler placed almost nothing"
        );
        assert!(r.outcomes.iter().any(|o| o.completed_at.is_some()));
        assert!(r.overload.conserved());
    }

    #[test]
    fn storm_over_fault_window_stays_conserved() {
        use optum_types::{FaultEvent, FaultKind};
        let base = generate(&WorkloadConfig::small(7)).unwrap();
        // A 6x BE-heavy storm overlapping a drain and a crash window.
        let w =
            optum_trace::apply_storm(&base, &optum_trace::StormConfig::single(9, 100, 200, 6.0))
                .unwrap();
        let mut cfg = SimConfig::new(40);
        cfg.queue_cap = Some(64);
        cfg.decision_cost_budget = Some(400);
        let mut plan = vec![
            FaultEvent {
                at: Tick(120),
                node: NodeId(3),
                kind: FaultKind::DrainStart,
            },
            FaultEvent {
                at: Tick(260),
                node: NodeId(3),
                kind: FaultKind::DrainEnd,
            },
            FaultEvent {
                at: Tick(150),
                node: NodeId(5),
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: Tick(400),
                node: NodeId(5),
                kind: FaultKind::Recover,
            },
        ];
        optum_types::sort_fault_plan(&mut plan);
        cfg.fault_events = plan;
        let r = crate::run(&w, FirstFit, cfg).unwrap();
        assert!(r.overload.conserved(), "{:?}", r.overload);
        assert!(r.overload.total_shed() > 0);
        assert!(r.placement_rate() > 0.1);
        // Fault-churn accounting still balances: every fault eviction
        // is either rescheduled, failed, or permanently shed.
        let ch = &r.churn;
        for c in &ch.per_class {
            assert!(c.rescheduled + c.failed <= c.evictions + 1);
        }
    }

    #[test]
    fn overload_checkpoint_resume_is_bit_identical() {
        let path = snap_path("overload");
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let overload_cfg = || {
            let mut cfg = SimConfig::new(40);
            cfg.queue_cap = Some(32);
            cfg.decision_cost_budget = Some(200);
            cfg
        };
        let baseline = crate::run(&w, FirstFit, overload_cfg()).unwrap();
        assert!(baseline.overload.total_shed() > 0 || baseline.overload.throttled_peak > 0);

        let mut ck = overload_cfg();
        ck.checkpoint_every = Some(250);
        ck.checkpoint_path = Some(path.clone());
        crate::run(&w, FirstFit, ck).unwrap();

        let bytes = crate::checkpoint::read_snapshot_file(&path).unwrap();
        let resumed = Simulator::resume(&w, FirstFit, overload_cfg(), &bytes)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(resumed.outcomes, baseline.outcomes);
        assert_eq!(resumed.overload, baseline.overload);
        assert_eq!(resumed.churn, baseline.churn);
        let _ = std::fs::remove_file(&path);
    }

    /// Driving the incremental `step()` API with each tick's arrivals
    /// as its inbox is bit-identical to the batch loop — including the
    /// overload ledger when admission control is active — and the
    /// outbox event stream agrees with the final outcomes.
    #[test]
    fn step_driven_run_is_bit_identical_to_batch() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let cfg = || {
            let mut cfg = SimConfig::new(40);
            cfg.queue_cap = Some(32);
            cfg
        };
        let batch = crate::run(&w, FirstFit, cfg()).unwrap();

        let mut sim = Simulator::new(&w, FirstFit, cfg()).unwrap();
        let schedule = optum_trace::arrival_schedule(&w);
        let mut cursor = 0usize;
        let (mut placed, mut completed, mut shed) = (0u64, 0u64, 0u64);
        while sim.next_step() < sim.end_tick() {
            let t = sim.next_step();
            let inbox: &[PodId] = match schedule.get(cursor) {
                Some((at, ids)) if *at == t => {
                    cursor += 1;
                    ids
                }
                _ => &[],
            };
            let out = sim.step(t, inbox).unwrap();
            assert_eq!(out.tick, t);
            placed += out.placed.len() as u64;
            completed += out.completed.len() as u64;
            shed += out.shed.len() as u64;
        }
        assert_eq!(cursor, schedule.len(), "every arrival submitted");
        let serve = sim.finish().unwrap();
        assert_eq!(serve.outcomes, batch.outcomes);
        assert_eq!(serve.cluster_series, batch.cluster_series);
        assert_eq!(serve.overload, batch.overload);
        assert_eq!(serve.digest(), batch.digest());
        // Events vs outcomes: completions and sheds are final states;
        // placements count re-placements after evictions, so they are
        // bounded below by the number of pods ever placed.
        let batch_completed = batch
            .outcomes
            .iter()
            .filter(|o| o.completed_at.is_some())
            .count();
        let batch_shed = batch
            .outcomes
            .iter()
            .filter(|o| o.shed_at.is_some())
            .count();
        assert_eq!(completed, batch_completed as u64);
        assert_eq!(shed, batch_shed as u64);
        assert!(placed >= batch.outcomes.iter().filter(|o| o.scheduled()).count() as u64);
    }

    /// The step API rejects out-of-order ticks, out-of-order or
    /// premature submissions, and a premature `finish()` — with errors,
    /// never state corruption (the engine stays usable afterwards).
    #[test]
    fn step_validates_tick_and_inbox_order() {
        let w = generate(&WorkloadConfig::small(7)).unwrap();
        let mut sim = Simulator::new(&w, FirstFit, SimConfig::new(40)).unwrap();
        let first_pod = w.pods[0].spec.id;
        let later = w
            .pods
            .iter()
            .find(|p| p.spec.arrival.0 > 0)
            .expect("multi-tick trace")
            .spec
            .id;

        // Wrong tick.
        assert!(sim.step(Tick(5), &[]).is_err());
        // A pod submitted before its arrival tick.
        assert!(sim.step(Tick(0), &[later]).is_err());
        // Out-of-trace-order submission of an already-arrived pod is
        // impossible at tick 0 other than via the wrong first pod.
        if first_pod != later {
            assert!(sim.step(Tick(0), &[later]).is_err());
        }
        // Premature finish.
        let err = Simulator::new(&w, FirstFit, SimConfig::new(40))
            .unwrap()
            .finish();
        assert!(err.is_err());
        // The engine is still at tick 0 and can proceed normally.
        assert_eq!(sim.next_step(), Tick::ZERO);
        let inbox: Vec<PodId> = w
            .pods
            .iter()
            .take_while(|p| p.spec.arrival == Tick::ZERO)
            .map(|p| p.spec.id)
            .collect();
        sim.step(Tick::ZERO, &inbox).unwrap();
        assert_eq!(sim.next_arrival_index(), inbox.len());
        assert_eq!(sim.next_step(), Tick(1));
    }
}
