//! The cluster state a scheduler sees at decision time.

use optum_predictors::{NodeObservation, PodInfo, UsagePredictor};
use optum_types::{ClusterConfig, Resources, Tick};

use crate::appstats::AppStatsStore;
use crate::node::NodeRuntime;

/// Read-only view of the cluster handed to schedulers.
pub struct ClusterView<'a> {
    /// Current tick.
    pub tick: Tick,
    /// All hosts with their runtime state.
    pub nodes: &'a [NodeRuntime],
    /// Live per-application statistics (a [`ProfileSource`]).
    ///
    /// [`ProfileSource`]: optum_predictors::ProfileSource
    pub apps: &'a AppStatsStore,
    /// Cluster configuration (capacities, memory guard).
    pub cluster: &'a ClusterConfig,
    /// Ticks of usage history exposed through observations.
    pub history_window: usize,
    /// Per-application affinity fractions (empty slice = no affinity
    /// constraints; every app admits every node).
    pub affinity: &'a [f64],
}

impl<'a> ClusterView<'a> {
    /// Whether `app`'s affinity admits `node` (§2.1: candidates are
    /// the affinity-satisfying nodes).
    pub fn allows(&self, app: optum_types::AppId, node: optum_types::NodeId) -> bool {
        match self.affinity.get(app.index()) {
            Some(&f) => optum_trace::affinity_allows(app.0, node.0, f),
            None => true,
        }
    }

    /// A predictor observation of one host as-is.
    pub fn observation(&self, node: &'a NodeRuntime) -> NodeObservation<'a> {
        NodeObservation {
            capacity: node.spec.capacity,
            pods: node.pod_infos(),
            cpu_history: node.cpu_window(self.history_window),
            mem_history: node.mem_window(self.history_window),
        }
    }

    /// A predictor observation of one host *as if* `extra` had just
    /// been placed on it; `buf` is a caller-owned scratch buffer reused
    /// across candidates to avoid per-candidate allocation.
    pub fn observation_plus<'b>(
        &self,
        node: &'b NodeRuntime,
        extra: PodInfo,
        buf: &'b mut Vec<PodInfo>,
    ) -> NodeObservation<'b>
    where
        'a: 'b,
    {
        buf.clear();
        buf.extend_from_slice(node.pod_infos());
        buf.push(extra);
        NodeObservation {
            capacity: node.spec.capacity,
            pods: buf,
            cpu_history: node.cpu_window(self.history_window),
            mem_history: node.mem_window(self.history_window),
        }
    }

    /// Convenience: predicted usage of a host after hypothetically
    /// adding `extra`.
    pub fn predict_plus(
        &self,
        predictor: &dyn UsagePredictor,
        node: &NodeRuntime,
        extra: PodInfo,
        buf: &mut Vec<PodInfo>,
    ) -> Resources {
        let obs = self.observation_plus(node, extra, buf);
        predictor.predict(&obs, self.apps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeRuntime, ResidentPod};
    use optum_predictors::{BorgDefault, PodInfo};
    use optum_types::{AppId, NodeId, NodeSpec, PodId, Resources, SloClass, Tick};

    fn fixture() -> (Vec<NodeRuntime>, AppStatsStore, ClusterConfig) {
        let mut node = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        node.add_pod(ResidentPod {
            id: PodId(1),
            app: AppId(0),
            slo: SloClass::Ls,
            request: Resources::new(0.2, 0.1),
            limit: Resources::new(0.4, 0.2),
            placed_at: Tick(0),
        });
        node.push_usage(Resources::new(0.1, 0.05));
        (
            vec![node],
            AppStatsStore::new(2),
            ClusterConfig::homogeneous(1),
        )
    }

    #[test]
    fn observation_reflects_node_state() {
        let (nodes, apps, cluster) = fixture();
        let view = ClusterView {
            tick: Tick(1),
            nodes: &nodes,
            apps: &apps,
            cluster: &cluster,
            history_window: 8,
            affinity: &[],
        };
        let obs = view.observation(&nodes[0]);
        assert_eq!(obs.pods.len(), 1);
        assert_eq!(obs.cpu_history, &[0.1]);
        assert_eq!(obs.mem_history, &[0.05]);
    }

    #[test]
    fn observation_plus_appends_without_mutating_node() {
        let (nodes, apps, cluster) = fixture();
        let view = ClusterView {
            tick: Tick(1),
            nodes: &nodes,
            apps: &apps,
            cluster: &cluster,
            history_window: 8,
            affinity: &[],
        };
        let extra = PodInfo {
            app: AppId(1),
            request: Resources::new(0.3, 0.2),
            limit: Resources::new(0.6, 0.4),
        };
        let mut buf = Vec::new();
        let pred = view.predict_plus(&BorgDefault::conservative(), &nodes[0], extra, &mut buf);
        // Conservative Borg: sum of requests including the newcomer.
        assert!((pred.cpu - 0.5).abs() < 1e-12);
        assert!((pred.mem - 0.30000000000000004).abs() < 1e-12);
        assert_eq!(nodes[0].pod_infos().len(), 1, "node untouched");
    }

    #[test]
    fn affinity_defaults_open_and_respects_fractions() {
        let (nodes, apps, cluster) = fixture();
        let view = ClusterView {
            tick: Tick(1),
            nodes: &nodes,
            apps: &apps,
            cluster: &cluster,
            history_window: 8,
            affinity: &[],
        };
        assert!(
            view.allows(AppId(0), NodeId(0)),
            "no constraints when empty"
        );

        let fractions = vec![0.0, 1.0];
        let view2 = ClusterView {
            tick: Tick(1),
            nodes: &nodes,
            apps: &apps,
            cluster: &cluster,
            history_window: 8,
            affinity: &fractions,
        };
        assert!(
            !view2.allows(AppId(0), NodeId(0)),
            "zero fraction admits nothing"
        );
        assert!(
            view2.allows(AppId(1), NodeId(0)),
            "unit fraction admits everything"
        );
    }
}
