//! Offline-profiling dataset collected by the tracing layer.
//!
//! The paper's Offline Profiler trains on the first seven days of
//! trace data (§5.1). A profiling simulation run with
//! `collect_training` enabled produces this dataset; the Optum
//! scheduler's profilers consume it.

use optum_predictors::ProfileSource;
use optum_types::{AppId, Resources};

/// One PSI training sample for a latency-sensitive application
/// (the inputs and output of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsiSample {
    /// Application the pod belongs to.
    pub app: AppId,
    /// Pod CPU utilization (usage / request).
    pub pod_cpu_util: f64,
    /// Pod memory utilization (usage / request).
    pub pod_mem_util: f64,
    /// Host CPU utilization.
    pub host_cpu_util: f64,
    /// Host memory utilization.
    pub host_mem_util: f64,
    /// Normalized QPS in `[0, 1]`.
    pub qps_norm: f64,
    /// Observed CPU PSI (60-second window), the learning target.
    pub psi: f64,
}

impl PsiSample {
    /// The feature vector in the order the profiler trains on.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.pod_cpu_util,
            self.pod_mem_util,
            self.host_cpu_util,
            self.host_mem_util,
            self.qps_norm,
        ]
    }
}

/// One completion-time training sample for a best-effort application
/// (the inputs and output of Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtSample {
    /// Application the pod belongs to.
    pub app: AppId,
    /// Maximum pod CPU utilization over the run.
    pub max_pod_cpu_util: f64,
    /// Maximum pod memory utilization over the run.
    pub max_pod_mem_util: f64,
    /// Maximum host CPU utilization over the run.
    pub max_host_cpu_util: f64,
    /// Maximum host memory utilization over the run.
    pub max_host_mem_util: f64,
    /// Normalized completion time in `[0, 1]`: the slowdown ratio
    /// `actual/nominal` scaled by [`CT_NORM_SCALE`] and clamped — an
    /// uncontended pod reads `1/CT_NORM_SCALE`, a pod slowed to
    /// `CT_NORM_SCALE×` its nominal time reads 1.0. (The paper
    /// normalizes to the maximum completion time; a ratio to the
    /// nominal is the per-app equivalent and keeps targets away from
    /// zero, where MAPE degenerates.)
    pub ct_norm: f64,
}

impl CtSample {
    /// The feature vector in the order the profiler trains on.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.max_pod_cpu_util,
            self.max_pod_mem_util,
            self.max_host_cpu_util,
            self.max_host_mem_util,
        ]
    }
}

/// The slowdown ratio mapped to the top of the `[0, 1]` target range
/// (the physics caps slowdown well below 4×).
pub const CT_NORM_SCALE: f64 = 4.0;

/// Normalizes a (nominal, actual) completion pair to the `[0, 1]`
/// learning target.
pub fn normalize_ct(nominal: u64, actual: u64) -> f64 {
    if nominal == 0 {
        return 0.0;
    }
    (actual as f64 / nominal as f64 / CT_NORM_SCALE).clamp(0.0, 1.0)
}

/// Dense pairwise effective-resource-usage table (Eq. 5), keyed by
/// application pair. Unobserved pairs read 1.0 (the conservative
/// initialization of §4.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EroTable {
    n: usize,
    /// Observed maxima; NaN marks "never observed".
    vals: Vec<f64>,
}

impl EroTable {
    /// Creates a table for `n` applications with no observations.
    pub fn new(n: usize) -> EroTable {
        EroTable {
            n,
            vals: vec![f64::NAN; n * n],
        }
    }

    fn idx(&self, a: AppId, b: AppId) -> usize {
        let (lo, hi) = if a.0 <= b.0 {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        // Upper-triangular packing.
        lo * self.n + hi
    }

    /// Records an observed joint-usage ratio for a co-located pair,
    /// keeping the maximum (Eq. 5). Ratios are clamped to `[0, 1]`
    /// (Eq. 4 guarantees the bound when usage ≤ request; throttled
    /// hosts can momentarily exceed it).
    pub fn observe(&mut self, a: AppId, b: AppId, ratio: f64) {
        if a.index() >= self.n || b.index() >= self.n {
            return;
        }
        let i = self.idx(a, b);
        let r = ratio.clamp(0.0, 1.0);
        if self.vals[i].is_nan() || self.vals[i] < r {
            self.vals[i] = r;
        }
    }

    /// The effective coefficient for a pair; 1.0 when never observed.
    pub fn get(&self, a: AppId, b: AppId) -> f64 {
        if a.index() >= self.n || b.index() >= self.n {
            return 1.0;
        }
        let v = self.vals[self.idx(a, b)];
        if v.is_nan() {
            1.0
        } else {
            v
        }
    }

    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when sized for zero applications.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Count of observed (non-default) pairs.
    pub fn observed_pairs(&self) -> usize {
        self.vals.iter().filter(|v| !v.is_nan()).count()
    }

    /// Serializes the table for a checkpoint (NaN "unobserved" markers
    /// round-trip bit-exactly through the snapshot's `f64::to_bits`
    /// encoding).
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.n as u64);
        w.put_u64(self.vals.len() as u64);
        for &v in &self.vals {
            w.put_f64(v);
        }
    }

    /// Restores a table from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<EroTable> {
        let n = r.get_len()?;
        let len = r.get_len()?;
        if len != n * n {
            return Err(optum_types::Error::InvalidData(format!(
                "snapshot corrupt: ERO table for {n} apps has {len} cells"
            )));
        }
        let mut vals = Vec::with_capacity(len);
        for _ in 0..len {
            vals.push(r.get_f64()?);
        }
        Ok(EroTable { n, vals })
    }
}

/// Per-application usage profile snapshot from the profiling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppUsageProfile {
    /// Whether the app was observed running at all.
    pub seen: bool,
    /// p99 of per-pod usage.
    pub p99_usage: Resources,
    /// Maximum observed per-pod CPU utilization (usage/request).
    pub max_cpu_util: f64,
    /// Maximum observed per-pod memory utilization.
    pub max_mem_util: f64,
    /// Coefficient of variation of pod memory utilization.
    pub mem_cov: f64,
    /// Maximum observed normalized QPS.
    pub max_qps_norm: f64,
}

impl Default for AppUsageProfile {
    fn default() -> AppUsageProfile {
        AppUsageProfile {
            seen: false,
            p99_usage: Resources::ZERO,
            max_cpu_util: 0.0,
            max_mem_util: 0.0,
            mem_cov: 0.0,
            max_qps_norm: 0.0,
        }
    }
}

/// The complete offline-profiling dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingData {
    /// PSI samples across all LS applications.
    pub psi: Vec<PsiSample>,
    /// Completion-time samples across all BE applications.
    pub ct: Vec<CtSample>,
    /// Pairwise ERO table.
    pub ero: EroTable,
    /// Triple-wise ERO table (when collected; §4.2.2's extension).
    pub triples: Option<TripleEroTable>,
    /// Per-application usage profiles, indexed by [`AppId`].
    pub app_profiles: Vec<AppUsageProfile>,
}

impl ProfileSource for TrainingData {
    fn p99_usage(&self, app: AppId) -> Option<Resources> {
        let p = self.app_profiles.get(app.index())?;
        if p.seen {
            Some(p.p99_usage)
        } else {
            None
        }
    }

    fn max_mem_util(&self, app: AppId) -> Option<f64> {
        let p = self.app_profiles.get(app.index())?;
        if !p.seen {
            return None;
        }
        // §4.2.2: profile the observed max only for memory-stable apps.
        if p.mem_cov <= 0.01 {
            Some(p.max_mem_util)
        } else {
            Some(1.0)
        }
    }

    fn ero(&self, a: AppId, b: AppId) -> f64 {
        self.ero.get(a, b)
    }

    fn ero3(&self, a: AppId, b: AppId, c: AppId) -> Option<f64> {
        self.triples.as_ref()?.get(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ero_defaults_to_one() {
        let t = EroTable::new(4);
        assert_eq!(t.get(AppId(0), AppId(3)), 1.0);
        assert_eq!(
            t.get(AppId(9), AppId(0)),
            1.0,
            "out of range is conservative"
        );
        assert_eq!(t.observed_pairs(), 0);
    }

    #[test]
    fn ero_keeps_maximum_and_is_symmetric() {
        let mut t = EroTable::new(4);
        t.observe(AppId(1), AppId(2), 0.4);
        t.observe(AppId(2), AppId(1), 0.6);
        t.observe(AppId(1), AppId(2), 0.5);
        assert_eq!(t.get(AppId(1), AppId(2)), 0.6);
        assert_eq!(t.get(AppId(2), AppId(1)), 0.6);
        assert_eq!(t.observed_pairs(), 1);
    }

    #[test]
    fn ero_clamps_ratio() {
        let mut t = EroTable::new(2);
        t.observe(AppId(0), AppId(1), 1.7);
        assert_eq!(t.get(AppId(0), AppId(1)), 1.0);
    }

    #[test]
    fn ct_normalization() {
        assert_eq!(normalize_ct(100, 100), 0.25);
        assert!((normalize_ct(100, 200) - 0.5).abs() < 1e-12);
        assert_eq!(normalize_ct(100, 1000), 1.0);
        assert_eq!(normalize_ct(0, 5), 0.0);
    }

    #[test]
    fn training_data_profile_source() {
        let mut profiles = vec![AppUsageProfile::default(); 3];
        profiles[1] = AppUsageProfile {
            seen: true,
            p99_usage: Resources::new(0.02, 0.01),
            max_cpu_util: 0.5,
            max_mem_util: 0.6,
            mem_cov: 0.005,
            max_qps_norm: 1.0,
        };
        profiles[2] = AppUsageProfile {
            seen: true,
            mem_cov: 0.5,
            ..profiles[1]
        };
        let td = TrainingData {
            psi: vec![],
            ct: vec![],
            ero: EroTable::new(3),
            triples: None,
            app_profiles: profiles,
        };
        assert_eq!(td.p99_usage(AppId(0)), None);
        assert_eq!(td.p99_usage(AppId(1)), Some(Resources::new(0.02, 0.01)));
        // Memory-stable app exposes its observed max; unstable app 1.0.
        assert_eq!(td.max_mem_util(AppId(1)), Some(0.6));
        assert_eq!(td.max_mem_util(AppId(2)), Some(1.0));
    }

    #[test]
    fn sample_feature_order() {
        let s = PsiSample {
            app: AppId(0),
            pod_cpu_util: 1.0,
            pod_mem_util: 2.0,
            host_cpu_util: 3.0,
            host_mem_util: 4.0,
            qps_norm: 5.0,
            psi: 0.5,
        };
        assert_eq!(s.features(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let c = CtSample {
            app: AppId(0),
            max_pod_cpu_util: 1.0,
            max_pod_mem_util: 2.0,
            max_host_cpu_util: 3.0,
            max_host_mem_util: 4.0,
            ct_norm: 0.1,
        };
        assert_eq!(c.features(), vec![1.0, 2.0, 3.0, 4.0]);
    }
}

/// Sparse triple-wise effective-resource-usage table — the extension
/// §4.2.2 sketches: profiling each *combination of three* applications
/// yields tighter usage predictions than pairs, at a profiling-overhead
/// cost (which is why Optum ships pairwise; this table exists for the
/// ablation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TripleEroTable {
    vals: std::collections::HashMap<u64, f64>,
}

impl TripleEroTable {
    /// Creates an empty table.
    pub fn new() -> TripleEroTable {
        TripleEroTable::default()
    }

    /// Packs a sorted app triple into one key (21 bits per id).
    fn key(a: AppId, b: AppId, c: AppId) -> u64 {
        let mut ids = [a.0 as u64, b.0 as u64, c.0 as u64];
        ids.sort_unstable();
        (ids[0] << 42) | (ids[1] << 21) | ids[2]
    }

    /// Records an observed joint-usage ratio for a co-located triple,
    /// keeping the maximum.
    pub fn observe(&mut self, a: AppId, b: AppId, c: AppId, ratio: f64) {
        let r = ratio.clamp(0.0, 1.0);
        let e = self
            .vals
            .entry(Self::key(a, b, c))
            .or_insert(f64::NEG_INFINITY);
        if *e < r {
            *e = r;
        }
    }

    /// The effective coefficient for a triple, if ever observed.
    pub fn get(&self, a: AppId, b: AppId, c: AppId) -> Option<f64> {
        self.vals.get(&Self::key(a, b, c)).copied()
    }

    /// Count of observed triples.
    pub fn observed(&self) -> usize {
        self.vals.len()
    }

    /// Serializes the table for a checkpoint. Entries are written in
    /// key order so identical tables always produce identical bytes
    /// (hash-map iteration order is not deterministic).
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        let mut entries: Vec<(u64, f64)> = self.vals.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        w.put_u64(entries.len() as u64);
        for (k, v) in entries {
            w.put_u64(k);
            w.put_f64(v);
        }
    }

    /// Restores a table from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<TripleEroTable> {
        let n = r.get_len()?;
        let mut vals = std::collections::HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.get_u64()?;
            vals.insert(k, r.get_f64()?);
        }
        Ok(TripleEroTable { vals })
    }
}

#[cfg(test)]
mod triple_tests {
    use super::*;

    #[test]
    fn triple_table_is_order_invariant() {
        let mut t = TripleEroTable::new();
        t.observe(AppId(3), AppId(1), AppId(2), 0.4);
        assert_eq!(t.get(AppId(1), AppId(2), AppId(3)), Some(0.4));
        assert_eq!(t.get(AppId(2), AppId(3), AppId(1)), Some(0.4));
        assert_eq!(t.get(AppId(1), AppId(2), AppId(4)), None);
        t.observe(AppId(1), AppId(2), AppId(3), 0.6);
        t.observe(AppId(1), AppId(2), AppId(3), 0.5);
        assert_eq!(t.get(AppId(3), AppId(2), AppId(1)), Some(0.6));
        assert_eq!(t.observed(), 1);
    }

    #[test]
    fn triple_clamps() {
        let mut t = TripleEroTable::new();
        t.observe(AppId(0), AppId(1), AppId(2), 2.0);
        assert_eq!(t.get(AppId(0), AppId(1), AppId(2)), Some(1.0));
    }
}
