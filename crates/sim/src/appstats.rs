//! Online per-application statistics (the Tracing Coordinator's live
//! aggregate view).
//!
//! Schedulers consult these statistics at decision time through the
//! [`ProfileSource`] trait: Resource Central needs per-pod p99 usage,
//! the Optum predictor needs memory profiles and ERO pairs. Statistics
//! update every physics pass and percentile caches refresh on a stride.

use optum_predictors::ProfileSource;
use optum_stats::RollingWindow;
use optum_types::{AppId, Resources};

use crate::training::EroTable;

/// Running statistics for one application.
#[derive(Debug, Clone)]
pub struct AppStats {
    /// Recent per-pod CPU usage samples.
    cpu_window: RollingWindow,
    /// Recent per-pod memory usage samples.
    mem_window: RollingWindow,
    /// Welford accumulators for memory *utilization* CoV.
    mem_util_count: u64,
    mem_util_mean: f64,
    mem_util_m2: f64,
    /// Maximum observed per-pod utilizations.
    pub max_cpu_util: f64,
    /// Maximum observed per-pod memory utilization.
    pub max_mem_util: f64,
    /// Maximum observed normalized QPS.
    pub max_qps_norm: f64,
    /// Cached p99s (refreshed on a stride).
    cached_p99: Option<Resources>,
    /// Total samples observed.
    pub samples: u64,
}

impl Default for AppStats {
    fn default() -> AppStats {
        AppStats {
            cpu_window: RollingWindow::new(1024),
            mem_window: RollingWindow::new(1024),
            mem_util_count: 0,
            mem_util_mean: 0.0,
            mem_util_m2: 0.0,
            max_cpu_util: 0.0,
            max_mem_util: 0.0,
            max_qps_norm: 0.0,
            cached_p99: None,
            samples: 0,
        }
    }
}

impl AppStats {
    /// Records one pod observation.
    pub fn observe(&mut self, usage: Resources, request: Resources, qps_norm: f64) {
        self.cpu_window.push(usage.cpu);
        self.mem_window.push(usage.mem);
        let cpu_util = if request.cpu > 0.0 {
            usage.cpu / request.cpu
        } else {
            0.0
        };
        let mem_util = if request.mem > 0.0 {
            usage.mem / request.mem
        } else {
            0.0
        };
        self.max_cpu_util = self.max_cpu_util.max(cpu_util);
        self.max_mem_util = self.max_mem_util.max(mem_util);
        self.max_qps_norm = self.max_qps_norm.max(qps_norm);
        // Welford update of the memory-utilization variance.
        self.mem_util_count += 1;
        let delta = mem_util - self.mem_util_mean;
        self.mem_util_mean += delta / self.mem_util_count as f64;
        self.mem_util_m2 += delta * (mem_util - self.mem_util_mean);
        self.samples += 1;
    }

    /// Coefficient of variation of the observed memory utilization.
    pub fn mem_cov(&self) -> f64 {
        if self.mem_util_count < 2 || self.mem_util_mean == 0.0 {
            return 0.0;
        }
        let var = self.mem_util_m2 / self.mem_util_count as f64;
        var.sqrt() / self.mem_util_mean.abs()
    }

    /// Recomputes the cached p99 usage.
    pub fn refresh(&mut self) {
        if self.cpu_window.is_empty() {
            self.cached_p99 = None;
            return;
        }
        let cpu = self.cpu_window.percentile(99.0).unwrap_or(0.0);
        let mem = self.mem_window.percentile(99.0).unwrap_or(0.0);
        self.cached_p99 = Some(Resources::new(cpu, mem));
    }

    /// The cached p99 usage, if any samples were observed.
    pub fn p99(&self) -> Option<Resources> {
        self.cached_p99
    }

    /// Serializes the statistics for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        let cpu = self.cpu_window.as_slice();
        w.put_u64(cpu.len() as u64);
        for x in cpu {
            w.put_f64(x);
        }
        let mem = self.mem_window.as_slice();
        w.put_u64(mem.len() as u64);
        for x in mem {
            w.put_f64(x);
        }
        w.put_u64(self.mem_util_count);
        w.put_f64(self.mem_util_mean);
        w.put_f64(self.mem_util_m2);
        w.put_f64(self.max_cpu_util);
        w.put_f64(self.max_mem_util);
        w.put_f64(self.max_qps_norm);
        match self.cached_p99 {
            Some(p) => {
                w.put_u64(1);
                w.put_f64(p.cpu);
                w.put_f64(p.mem);
            }
            None => w.put_u64(0),
        }
        w.put_u64(self.samples);
    }

    /// Restores statistics from a checkpoint section.
    pub(crate) fn snap_load(
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<AppStats> {
        let mut s = AppStats::default();
        // Windows hold at most their capacity, so replaying the saved
        // samples in order reproduces the deque exactly.
        for _ in 0..r.get_len()? {
            s.cpu_window.push(r.get_f64()?);
        }
        for _ in 0..r.get_len()? {
            s.mem_window.push(r.get_f64()?);
        }
        s.mem_util_count = r.get_u64()?;
        s.mem_util_mean = r.get_f64()?;
        s.mem_util_m2 = r.get_f64()?;
        s.max_cpu_util = r.get_f64()?;
        s.max_mem_util = r.get_f64()?;
        s.max_qps_norm = r.get_f64()?;
        s.cached_p99 = if r.get_u64()? != 0 {
            Some(Resources::new(r.get_f64()?, r.get_f64()?))
        } else {
            None
        };
        s.samples = r.get_u64()?;
        Ok(s)
    }
}

/// Store of per-application statistics plus the live ERO table.
#[derive(Debug, Clone)]
pub struct AppStatsStore {
    stats: Vec<AppStats>,
    ero: EroTable,
}

impl AppStatsStore {
    /// Creates a store for `n_apps` applications.
    pub fn new(n_apps: usize) -> AppStatsStore {
        AppStatsStore {
            stats: (0..n_apps).map(|_| AppStats::default()).collect(),
            ero: EroTable::new(n_apps),
        }
    }

    /// Number of tracked applications.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when tracking no applications.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Statistics of one application.
    pub fn get(&self, app: AppId) -> &AppStats {
        &self.stats[app.index()]
    }

    /// Records one pod observation for an application.
    pub fn observe(&mut self, app: AppId, usage: Resources, request: Resources, qps: f64) {
        self.stats[app.index()].observe(usage, request, qps);
    }

    /// Records a pairwise joint-usage ratio.
    pub fn observe_pair(&mut self, a: AppId, b: AppId, ratio: f64) {
        self.ero.observe(a, b, ratio);
    }

    /// Refreshes every application's cached percentiles.
    pub fn refresh_all(&mut self) {
        for s in &mut self.stats {
            s.refresh();
        }
    }

    /// The live ERO table.
    pub fn ero_table(&self) -> &EroTable {
        &self.ero
    }

    /// Serializes the store for a checkpoint.
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        w.put_u64(self.stats.len() as u64);
        for s in &self.stats {
            s.snap_save(w);
        }
        self.ero.snap_save(w);
    }

    /// Restores a store from a checkpoint section; the app count must
    /// match the workload the simulator was rebuilt over.
    pub(crate) fn snap_load(
        n_apps: usize,
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<AppStatsStore> {
        let n = r.get_len()?;
        if n != n_apps {
            return Err(optum_types::Error::InvalidData(format!(
                "snapshot covers {n} applications but the workload has {n_apps}"
            )));
        }
        let mut stats = Vec::with_capacity(n);
        for _ in 0..n {
            stats.push(AppStats::snap_load(r)?);
        }
        let ero = EroTable::snap_load(r)?;
        Ok(AppStatsStore { stats, ero })
    }
}

impl ProfileSource for AppStatsStore {
    fn p99_usage(&self, app: AppId) -> Option<Resources> {
        self.stats.get(app.index())?.p99()
    }

    fn max_mem_util(&self, app: AppId) -> Option<f64> {
        let s = self.stats.get(app.index())?;
        if s.samples == 0 {
            return None;
        }
        if s.mem_cov() <= 0.01 {
            Some(s.max_mem_util)
        } else {
            Some(1.0)
        }
    }

    fn ero(&self, a: AppId, b: AppId) -> f64 {
        self.ero.get(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_needs_refresh() {
        let mut store = AppStatsStore::new(2);
        for i in 0..100 {
            store.observe(
                AppId(0),
                Resources::new(i as f64 / 100.0, 0.01),
                Resources::new(1.0, 0.02),
                0.0,
            );
        }
        assert_eq!(store.p99_usage(AppId(0)), None, "cache not refreshed yet");
        store.refresh_all();
        let p99 = store.p99_usage(AppId(0)).unwrap();
        assert!(p99.cpu > 0.95, "p99 {p99:?}");
        assert_eq!(store.p99_usage(AppId(1)), None);
    }

    #[test]
    fn memory_profile_depends_on_stability() {
        let mut store = AppStatsStore::new(2);
        // App 0: rock-stable memory utilization.
        for _ in 0..50 {
            store.observe(
                AppId(0),
                Resources::new(0.0, 0.01),
                Resources::new(0.1, 0.02),
                0.0,
            );
        }
        // App 1: wildly varying memory.
        for i in 0..50 {
            let mem = if i % 2 == 0 { 0.002 } else { 0.018 };
            store.observe(
                AppId(1),
                Resources::new(0.0, mem),
                Resources::new(0.1, 0.02),
                0.0,
            );
        }
        assert_eq!(store.max_mem_util(AppId(0)), Some(0.5));
        assert_eq!(store.max_mem_util(AppId(1)), Some(1.0));
    }

    #[test]
    fn max_utils_track_peaks() {
        let mut s = AppStats::default();
        s.observe(Resources::new(0.02, 0.01), Resources::new(0.1, 0.1), 0.3);
        s.observe(Resources::new(0.08, 0.005), Resources::new(0.1, 0.1), 0.9);
        assert!((s.max_cpu_util - 0.8).abs() < 1e-12);
        assert!((s.max_mem_util - 0.1).abs() < 1e-12);
        assert_eq!(s.max_qps_norm, 0.9);
        assert_eq!(s.samples, 2);
    }

    #[test]
    fn ero_through_store() {
        let mut store = AppStatsStore::new(3);
        store.observe_pair(AppId(0), AppId(1), 0.45);
        assert_eq!(store.ero(AppId(0), AppId(1)), 0.45);
        assert_eq!(store.ero(AppId(0), AppId(2)), 1.0);
    }

    #[test]
    fn welford_cov_matches_direct() {
        let mut s = AppStats::default();
        let utils = [0.4, 0.5, 0.6, 0.5, 0.45, 0.55];
        for &u in &utils {
            s.observe(
                Resources::new(0.0, u * 0.02),
                Resources::new(0.1, 0.02),
                0.0,
            );
        }
        let direct = optum_stats::coefficient_of_variation(&utils).unwrap();
        assert!(
            (s.mem_cov() - direct).abs() < 1e-9,
            "{} vs {direct}",
            s.mem_cov()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cached p99 always lies within the observed sample range.
        #[test]
        fn p99_within_observed_range(
            samples in proptest::collection::vec(0.001f64..1.0, 2..200)
        ) {
            let mut store = AppStatsStore::new(1);
            for &s in &samples {
                store.observe(
                    AppId(0),
                    Resources::new(s, s / 2.0),
                    Resources::new(1.0, 1.0),
                    0.0,
                );
            }
            store.refresh_all();
            let p99 = store.p99_usage(AppId(0)).unwrap();
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(p99.cpu >= lo - 1e-12 && p99.cpu <= hi + 1e-12);
        }

        /// Max utilizations never decrease as more samples arrive.
        #[test]
        fn max_utils_monotone(samples in proptest::collection::vec(0.001f64..1.0, 1..100)) {
            let mut s = AppStats::default();
            let mut prev = 0.0;
            for &x in &samples {
                s.observe(Resources::new(x, x), Resources::new(1.0, 1.0), x);
                prop_assert!(s.max_cpu_util >= prev);
                prev = s.max_cpu_util;
            }
        }
    }
}
