//! Simulation configuration.

use optum_predictors::UsagePredictor;
use optum_types::{ClusterConfig, FaultEvent, Tick};

/// Configuration of an online predictor-accuracy evaluation
/// (drives Fig. 11).
///
/// Every `stride` ticks the simulator asks each predictor for every
/// host's upcoming usage, then scores the prediction against the
/// actual *peak* usage over the following `horizon` ticks.
pub struct PredictorEval {
    /// The predictors to score.
    pub predictors: Vec<Box<dyn UsagePredictor>>,
    /// Ticks between evaluation rounds.
    pub stride: u64,
    /// Look-ahead window whose actual peak is the ground truth.
    pub horizon: u64,
    /// Ticks to skip before the first evaluation round (predictors
    /// need usage history to be meaningful).
    pub warmup: u64,
}

/// Simulator configuration.
pub struct SimConfig {
    /// The cluster being simulated.
    pub cluster: ClusterConfig,
    /// Ticks of per-node usage history exposed to schedulers
    /// (default: 24 hours, the window production predictors use).
    pub history_window: usize,
    /// Maximum placement decisions per tick (models real scheduler
    /// throughput; Borg schedules ~250K tasks/hour ≈ 2,000 per tick).
    pub schedule_budget_per_tick: usize,
    /// Record, for each placement, the alignment-score rank of the
    /// chosen host under usage- and request-based availability
    /// (Fig. 10). Costs O(nodes) per placement.
    pub record_ranks: bool,
    /// Collect the offline-profiling dataset (PSI samples, completion
    /// samples, ERO table, app profiles).
    pub collect_training: bool,
    /// Additionally collect triple-wise ERO profiles (§4.2.2's
    /// extension; noticeably more profiling overhead).
    pub collect_triple_ero: bool,
    /// Stride between per-pod training samples, in ticks.
    pub training_stride: u64,
    /// Stride between recorded cluster/pod series points, in ticks.
    pub series_stride: u64,
    /// How many pods per application get full time series recorded
    /// (Figs. 12–16 need per-pod series; recording all pods would not
    /// fit in memory at scale).
    pub pods_per_app_sampled: usize,
    /// Stop the simulation early (defaults to the workload window).
    pub end_tick: Option<Tick>,
    /// Optional predictor-accuracy evaluation.
    pub predictor_eval: Option<PredictorEval>,
    /// Capture a per-node commitment snapshot at this tick (Fig. 5).
    pub snapshot_tick: Option<Tick>,
    /// Request over-commit budget assumed when preempting BE pods for
    /// LSR (matches the production scheduler's CPU cap; preemption
    /// against raw capacity would never free room on an over-committed
    /// host).
    pub preempt_request_cap: f64,
    /// Fault-injection plan (node crashes, drains, degradation,
    /// straggler kills), sorted by [`FaultEvent::order_key`]. Empty
    /// means a healthy cluster — the default, and bit-identical to the
    /// pre-chaos engine.
    pub fault_events: Vec<FaultEvent>,
    /// Restart backoff after a fault-driven eviction: the first retry
    /// waits this many ticks, doubling per subsequent eviction of the
    /// same pod (scheduler preemption carries no backoff).
    pub evict_backoff_base: u64,
    /// Upper bound of the eviction restart backoff, in ticks.
    pub evict_backoff_cap: u64,
    /// Bound on the pending queue (`--queue-cap`). When the queue
    /// exceeds the cap after an admission round, the admission
    /// controller sheds pods in strict SLO-priority order — BE first,
    /// LSR last, newest arrival first within a class — and throttles
    /// BE admission once depth crosses the high-water mark
    /// (3/4 of the cap). `None` (the default) is an unbounded queue:
    /// bit-identical to the pre-overload engine.
    pub queue_cap: Option<usize>,
    /// Per-tick scheduling decision deadline in deterministic virtual
    /// cost units (one unit ≈ one candidate host examined); see
    /// [`crate::DecisionBudget`]. `None` (the default) means no
    /// deadline: bit-identical to the pre-overload engine.
    pub decision_cost_budget: Option<u64>,
    /// Write a crash-consistent engine snapshot every this many ticks
    /// (requires `checkpoint_path` and a scheduler that implements
    /// [`crate::Scheduler::save_state`]).
    pub checkpoint_every: Option<u64>,
    /// Snapshot file, atomically replaced at every checkpoint.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Shard layout the run executes under (`--shards`). The legacy
    /// single-engine simulator does not partition its state, but the
    /// layout is still recorded in every checkpoint (snapshot format
    /// v3+) so a run checkpointed under one `--shards` value cannot
    /// silently resume under another. `None` means the single-shard
    /// layout [`optum_types::ShardLayout::single`].
    pub shard_layout: Option<optum_types::ShardLayout>,
}

impl SimConfig {
    /// Default configuration for a cluster of `hosts` standard nodes.
    pub fn new(hosts: usize) -> SimConfig {
        SimConfig {
            cluster: ClusterConfig::homogeneous(hosts),
            history_window: 2880,
            schedule_budget_per_tick: 2000,
            record_ranks: false,
            collect_training: false,
            collect_triple_ero: false,
            training_stride: 10,
            series_stride: 10,
            pods_per_app_sampled: 2,
            end_tick: None,
            predictor_eval: None,
            snapshot_tick: None,
            preempt_request_cap: 3.0,
            fault_events: Vec::new(),
            evict_backoff_base: 2,
            evict_backoff_cap: 120,
            queue_cap: None,
            decision_cost_budget: None,
            checkpoint_every: None,
            checkpoint_path: None,
            shard_layout: None,
        }
    }

    /// The effective shard layout: the configured one, or the
    /// degenerate single-shard layout over the cluster.
    pub fn effective_shard_layout(&self) -> optum_types::ShardLayout {
        self.shard_layout
            .clone()
            .unwrap_or_else(|| optum_types::ShardLayout::single(self.cluster.node_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = SimConfig::new(50);
        assert_eq!(c.cluster.node_count, 50);
        assert_eq!(c.history_window, 2880);
        assert!(c.predictor_eval.is_none());
        assert!(c.fault_events.is_empty());
        assert!(c.evict_backoff_base <= c.evict_backoff_cap);
        assert!(c.queue_cap.is_none());
        assert!(c.decision_cost_budget.is_none());
    }
}
