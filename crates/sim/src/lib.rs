//! Discrete-event cluster simulator for unified scheduling.
//!
//! Replays a generated [`optum_trace::Workload`] against a pluggable
//! [`Scheduler`], advancing in 30-second ticks:
//!
//! 1. newly arrived unified requests enter the pending queue;
//! 2. the scheduler places pending pods (highest SLO class first) with
//!    a per-tick budget modeling real scheduler throughput; LSR pods
//!    may preempt BE pods when no host fits;
//! 3. the ground-truth physics produces every pod's actual usage; CPU
//!    over-runs are throttled proportionally and counted as capacity
//!    violations;
//! 4. PSI windows advance for latency-sensitive pods and best-effort
//!    progress integrates under contention, inflating completion times;
//! 5. the tracing layer records per-tick cluster statistics, sampled
//!    pod series, waiting-time outcomes, predictor-accuracy points and
//!    (optionally) the offline-profiling dataset Optum trains on.
//!
//! The result ([`SimResult`]) carries everything the paper's figures
//! need. Simulations are fully deterministic: identical configuration
//! and scheduler behavior yield identical results.

pub mod appstats;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod node;
pub mod result;
pub mod scheduler;
pub mod training;
pub mod view;

pub use appstats::AppStatsStore;
pub use checkpoint::{
    read_snapshot_file, write_snapshot_file, Fingerprint, SnapReader, SnapWriter,
};
pub use config::{PredictorEval, SimConfig};
pub use engine::{Simulator, StepOutbox, SubmitEntry};
pub use node::{NodeRuntime, ResidentPod};
pub use result::{
    ChurnStats, ClassChurn, ClassOverload, ClusterTickStats, NodeSnapshot, OverloadStats,
    PodOutcome, PodPoint, SimResult, ViolationStats,
};
pub use scheduler::{Decision, DecisionBudget, Scheduler};
pub use training::{AppUsageProfile, CtSample, EroTable, PsiSample, TrainingData, TripleEroTable};
pub use view::ClusterView;

/// Runs a workload under a scheduler and returns the collected result.
pub fn run<S: Scheduler>(
    workload: &optum_trace::Workload,
    scheduler: S,
    config: SimConfig,
) -> optum_types::Result<SimResult> {
    Simulator::new(workload, scheduler, config)?.run()
}
