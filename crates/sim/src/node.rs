//! Per-node runtime state.

use optum_predictors::PodInfo;
use optum_types::{AppId, NodeLifecycle, NodeSpec, PodId, Resources, SloClass, Tick};

/// A pod resident on a node, as the node tracks it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentPod {
    /// Pod identity.
    pub id: PodId,
    /// Owning application.
    pub app: AppId,
    /// SLO class.
    pub slo: SloClass,
    /// Resource request.
    pub request: Resources,
    /// Resource limit.
    pub limit: Resources,
    /// When the pod was placed here.
    pub placed_at: Tick,
}

/// Runtime state of one physical host.
///
/// Keeps resident pods in placement order (the Optum predictor pairs
/// them in that order), running request/limit sums, the last computed
/// actual usage, and an append-only usage history from which schedulers
/// read their observation windows.
#[derive(Debug, Clone)]
pub struct NodeRuntime {
    /// Static description.
    pub spec: NodeSpec,
    /// Lifecycle state (fault injection drives this; healthy runs stay
    /// [`NodeLifecycle::Up`] forever).
    pub lifecycle: NodeLifecycle,
    /// Effective-capacity multiplier in `(0, 1]`; `1.0` when healthy.
    /// Transient degradation (thermal throttling, noisy daemons)
    /// shrinks it.
    pub degrade: f64,
    /// Resident pods, in placement order.
    pub pods: Vec<ResidentPod>,
    /// Parallel predictor-facing view of `pods`.
    infos: Vec<PodInfo>,
    /// Sum of resident requests.
    pub requested: Resources,
    /// Sum of resident requests of best-effort pods only (schedulers
    /// reserve burst headroom for the non-BE remainder).
    pub requested_be: Resources,
    /// Sum of resident limits.
    pub limits: Resources,
    /// Actual usage computed in the last physics pass.
    pub usage: Resources,
    /// Append-only CPU usage history (one entry per tick).
    cpu_history: Vec<f64>,
    /// Append-only memory usage history (one entry per tick).
    mem_history: Vec<f64>,
    /// Statistics window length in ticks.
    window: usize,
    /// Incremental windowed sums: (Σx, Σx²) for CPU and memory, so
    /// N-sigma-style mean/std queries are O(1) instead of O(window).
    cpu_sums: (f64, f64),
    mem_sums: (f64, f64),
}

/// Default statistics window: 24 hours of 30-second ticks.
const DEFAULT_WINDOW: usize = 2880;

impl NodeRuntime {
    /// Creates an empty node with the default 24-hour stats window.
    pub fn new(spec: NodeSpec) -> NodeRuntime {
        NodeRuntime::with_window(spec, DEFAULT_WINDOW)
    }

    /// Creates an empty node with an explicit stats window.
    pub fn with_window(spec: NodeSpec, window: usize) -> NodeRuntime {
        NodeRuntime {
            spec,
            lifecycle: NodeLifecycle::Up,
            degrade: 1.0,
            pods: Vec::new(),
            infos: Vec::new(),
            requested: Resources::ZERO,
            requested_be: Resources::ZERO,
            limits: Resources::ZERO,
            usage: Resources::ZERO,
            cpu_history: Vec::new(),
            mem_history: Vec::new(),
            window: window.max(1),
            cpu_sums: (0.0, 0.0),
            mem_sums: (0.0, 0.0),
        }
    }

    /// Number of resident pods.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// Whether the node may receive new placements (it is
    /// [`NodeLifecycle::Up`]). Schedulers must skip nodes that fail
    /// this; the engine's stale-view guard rejects placements onto
    /// them regardless.
    pub fn is_schedulable(&self) -> bool {
        self.lifecycle.is_schedulable()
    }

    /// Capacity currently usable by the physics: nominal capacity
    /// scaled by the degradation factor. Exactly the nominal capacity
    /// when healthy (the common case takes the fast path, keeping
    /// healthy runs bit-identical to the pre-chaos engine).
    pub fn effective_capacity(&self) -> Resources {
        if self.degrade >= 1.0 {
            self.spec.capacity
        } else {
            self.spec.capacity.scale(self.degrade)
        }
    }

    /// Adds a pod (placement).
    pub fn add_pod(&mut self, pod: ResidentPod) {
        self.requested += pod.request;
        if pod.slo == SloClass::Be {
            self.requested_be += pod.request;
        }
        self.limits += pod.limit;
        self.infos.push(PodInfo {
            app: pod.app,
            request: pod.request,
            limit: pod.limit,
        });
        self.pods.push(pod);
    }

    /// Removes a pod (completion or preemption); returns it when found.
    pub fn remove_pod(&mut self, id: PodId) -> Option<ResidentPod> {
        let idx = self.pods.iter().position(|p| p.id == id)?;
        let pod = self.pods.remove(idx);
        self.infos.remove(idx);
        self.requested -= pod.request;
        if pod.slo == SloClass::Be {
            self.requested_be -= pod.request;
        }
        self.limits -= pod.limit;
        // Clamp float drift so an emptied node reads exactly zero.
        if self.pods.is_empty() {
            self.requested = Resources::ZERO;
            self.requested_be = Resources::ZERO;
            self.limits = Resources::ZERO;
        }
        Some(pod)
    }

    /// Records the node's actual usage for this tick and slides the
    /// windowed sums.
    pub fn push_usage(&mut self, usage: Resources) {
        self.usage = usage;
        self.cpu_history.push(usage.cpu);
        self.mem_history.push(usage.mem);
        self.cpu_sums.0 += usage.cpu;
        self.cpu_sums.1 += usage.cpu * usage.cpu;
        self.mem_sums.0 += usage.mem;
        self.mem_sums.1 += usage.mem * usage.mem;
        let n = self.cpu_history.len();
        if n > self.window {
            let old_cpu = self.cpu_history[n - 1 - self.window];
            let old_mem = self.mem_history[n - 1 - self.window];
            self.cpu_sums.0 -= old_cpu;
            self.cpu_sums.1 -= old_cpu * old_cpu;
            self.mem_sums.0 -= old_mem;
            self.mem_sums.1 -= old_mem * old_mem;
        }
    }

    /// Windowed (mean, std) of CPU usage in O(1); zeros when empty.
    pub fn cpu_stats(&self) -> (f64, f64) {
        Self::stats_of(self.cpu_sums, self.cpu_history.len().min(self.window))
    }

    /// Windowed (mean, std) of memory usage in O(1); zeros when empty.
    pub fn mem_stats(&self) -> (f64, f64) {
        Self::stats_of(self.mem_sums, self.mem_history.len().min(self.window))
    }

    fn stats_of(sums: (f64, f64), n: usize) -> (f64, f64) {
        if n == 0 {
            return (0.0, 0.0);
        }
        let mean = sums.0 / n as f64;
        // Guard against tiny negative variance from float drift.
        let var = (sums.1 / n as f64 - mean * mean).max(0.0);
        (mean, var.sqrt())
    }

    /// The last `window` CPU usage samples (fewer if young).
    pub fn cpu_window(&self, window: usize) -> &[f64] {
        let n = self.cpu_history.len();
        &self.cpu_history[n.saturating_sub(window)..]
    }

    /// The last `window` memory usage samples (fewer if young).
    pub fn mem_window(&self, window: usize) -> &[f64] {
        let n = self.mem_history.len();
        &self.mem_history[n.saturating_sub(window)..]
    }

    /// Maximum recorded CPU usage over the trailing `window` ticks.
    pub fn peak_cpu(&self, window: usize) -> f64 {
        self.cpu_window(window).iter().copied().fold(0.0, f64::max)
    }

    /// Predictor-facing pod list, in placement order.
    pub fn pod_infos(&self) -> &[PodInfo] {
        &self.infos
    }

    /// Current utilization (usage relative to capacity).
    pub fn utilization(&self) -> Resources {
        self.usage.div(&self.spec.capacity)
    }

    /// Free capacity by requests (negative coordinates clamped to 0).
    pub fn free_by_request(&self) -> Resources {
        self.spec.capacity.saturating_sub(&self.requested)
    }

    /// Free capacity by last actual usage.
    pub fn free_by_usage(&self) -> Resources {
        self.spec.capacity.saturating_sub(&self.usage)
    }

    /// Serializes the node's mutable state for a checkpoint (the spec
    /// and window are rebuilt from configuration at restore time).
    pub(crate) fn snap_save(&self, w: &mut crate::checkpoint::SnapWriter) {
        use crate::checkpoint::{lifecycle_code, slo_code};
        w.put_u64(lifecycle_code(self.lifecycle));
        w.put_f64(self.degrade);
        w.put_u64(self.pods.len() as u64);
        for p in &self.pods {
            w.put_u64(p.id.0 as u64);
            w.put_u64(p.app.0 as u64);
            w.put_u64(slo_code(p.slo));
            w.put_f64(p.request.cpu);
            w.put_f64(p.request.mem);
            w.put_f64(p.limit.cpu);
            w.put_f64(p.limit.mem);
            w.put_u64(p.placed_at.0);
        }
        // Running sums are saved verbatim, not recomputed from pods:
        // float accumulation order (adds and removes over the run)
        // would not reproduce them bit-exactly.
        for r in [self.requested, self.requested_be, self.limits, self.usage] {
            w.put_f64(r.cpu);
            w.put_f64(r.mem);
        }
        w.put_u64(self.cpu_history.len() as u64);
        for &x in &self.cpu_history {
            w.put_f64(x);
        }
        w.put_u64(self.mem_history.len() as u64);
        for &x in &self.mem_history {
            w.put_f64(x);
        }
        w.put_f64(self.cpu_sums.0);
        w.put_f64(self.cpu_sums.1);
        w.put_f64(self.mem_sums.0);
        w.put_f64(self.mem_sums.1);
    }

    /// Restores a node from a checkpoint section.
    pub(crate) fn snap_load(
        spec: NodeSpec,
        window: usize,
        r: &mut crate::checkpoint::SnapReader<'_>,
    ) -> optum_types::Result<NodeRuntime> {
        use crate::checkpoint::{lifecycle_from, slo_from};
        let mut node = NodeRuntime::with_window(spec, window);
        node.lifecycle = lifecycle_from(r.get_u64()?)?;
        node.degrade = r.get_f64()?;
        let n_pods = r.get_len()?;
        for _ in 0..n_pods {
            let pod = ResidentPod {
                id: PodId(r.get_u64()? as u32),
                app: AppId(r.get_u64()? as u32),
                slo: slo_from(r.get_u64()?)?,
                request: Resources::new(r.get_f64()?, r.get_f64()?),
                limit: Resources::new(r.get_f64()?, r.get_f64()?),
                placed_at: Tick(r.get_u64()?),
            };
            node.infos.push(PodInfo {
                app: pod.app,
                request: pod.request,
                limit: pod.limit,
            });
            node.pods.push(pod);
        }
        node.requested = Resources::new(r.get_f64()?, r.get_f64()?);
        node.requested_be = Resources::new(r.get_f64()?, r.get_f64()?);
        node.limits = Resources::new(r.get_f64()?, r.get_f64()?);
        node.usage = Resources::new(r.get_f64()?, r.get_f64()?);
        let n_cpu = r.get_len()?;
        node.cpu_history.reserve(n_cpu);
        for _ in 0..n_cpu {
            node.cpu_history.push(r.get_f64()?);
        }
        let n_mem = r.get_len()?;
        node.mem_history.reserve(n_mem);
        for _ in 0..n_mem {
            node.mem_history.push(r.get_f64()?);
        }
        node.cpu_sums = (r.get_f64()?, r.get_f64()?);
        node.mem_sums = (r.get_f64()?, r.get_f64()?);
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optum_types::NodeId;

    fn pod(id: u32, cpu: f64, mem: f64) -> ResidentPod {
        ResidentPod {
            id: PodId(id),
            app: AppId(0),
            slo: SloClass::Ls,
            request: Resources::new(cpu, mem),
            limit: Resources::new(cpu * 2.0, mem * 2.0),
            placed_at: Tick(0),
        }
    }

    #[test]
    fn add_remove_keeps_sums() {
        let mut n = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        n.add_pod(pod(1, 0.2, 0.1));
        n.add_pod(pod(2, 0.3, 0.2));
        assert_eq!(n.requested, Resources::new(0.5, 0.30000000000000004));
        assert_eq!(n.pod_infos().len(), 2);
        let removed = n.remove_pod(PodId(1)).unwrap();
        assert_eq!(removed.id, PodId(1));
        assert!((n.requested.cpu - 0.3).abs() < 1e-12);
        assert_eq!(n.pod_infos()[0].request.cpu, 0.3);
        assert!(n.remove_pod(PodId(9)).is_none());
        n.remove_pod(PodId(2));
        assert_eq!(n.requested, Resources::ZERO);
    }

    #[test]
    fn history_windows() {
        let mut n = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        for i in 0..10 {
            n.push_usage(Resources::new(i as f64 / 10.0, 0.5));
        }
        assert_eq!(n.cpu_window(3), &[0.7, 0.8, 0.9]);
        assert_eq!(n.cpu_window(100).len(), 10);
        assert_eq!(n.peak_cpu(5), 0.9);
        assert_eq!(n.mem_window(2), &[0.5, 0.5]);
        assert_eq!(n.usage.cpu, 0.9);
    }

    #[test]
    fn lifecycle_gates_schedulability() {
        use optum_types::NodeLifecycle;
        let mut n = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        assert!(n.is_schedulable());
        assert_eq!(n.effective_capacity(), n.spec.capacity);
        n.lifecycle = NodeLifecycle::Draining;
        assert!(!n.is_schedulable());
        n.lifecycle = NodeLifecycle::Down;
        assert!(!n.is_schedulable());
        n.degrade = 0.5;
        assert!((n.effective_capacity().cpu - n.spec.capacity.cpu * 0.5).abs() < 1e-12);
    }

    #[test]
    fn free_capacity() {
        let mut n = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        n.add_pod(pod(1, 0.7, 0.2));
        assert!((n.free_by_request().cpu - 0.3).abs() < 1e-12);
        n.add_pod(pod(2, 0.7, 0.2));
        // Over-committed: free-by-request clamps at zero.
        assert_eq!(n.free_by_request().cpu, 0.0);
        n.push_usage(Resources::new(0.4, 0.1));
        assert!((n.free_by_usage().cpu - 0.6).abs() < 1e-12);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use optum_types::NodeId;

    #[test]
    fn incremental_stats_match_direct() {
        let mut n = NodeRuntime::with_window(NodeSpec::standard(NodeId(0)), 5);
        let xs = [0.1, 0.9, 0.4, 0.6, 0.2, 0.8, 0.3, 0.7];
        for &x in &xs {
            n.push_usage(Resources::new(x, x / 2.0));
        }
        let window = &xs[xs.len() - 5..];
        let mean = optum_stats::mean(window);
        let std = optum_stats::stddev(window);
        let (m, s) = n.cpu_stats();
        assert!((m - mean).abs() < 1e-9, "{m} vs {mean}");
        assert!((s - std).abs() < 1e-9, "{s} vs {std}");
        let (mm, _) = n.mem_stats();
        assert!((mm - mean / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let n = NodeRuntime::new(NodeSpec::standard(NodeId(0)));
        assert_eq!(n.cpu_stats(), (0.0, 0.0));
        assert_eq!(n.mem_stats(), (0.0, 0.0));
    }
}
