//! Bit-identity of the flattened tree layout against the boxed builder.
//!
//! The flattened struct-of-arrays `DecisionTree` must be an exact
//! structural copy of the recursive boxed tree it is lowered from:
//! every prediction bit-identical, every leaf preserved. These tests
//! sweep a seed × params grid with random data (proptest) so the
//! equivalence holds across tree shapes, not just the goldens' shapes.

use optum_ml::{BoxedTree, DecisionTree, Matrix, Regressor, TreeParams};
use proptest::prelude::*;

/// Deterministic pseudo-random feature value from a cheap hash, so
/// the grid test needs no RNG plumbing.
fn feat(seed: u64, r: usize, c: usize) -> f64 {
    let mut z = seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c as u64) << 17;
    z ^= z >> 33;
    z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z ^= z >> 33;
    (z % 1000) as f64 / 100.0
}

fn grid_data(seed: u64, rows: usize, cols: usize) -> (Matrix, Vec<f64>) {
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|r| (0..cols).map(|c| feat(seed, r, c)).collect())
        .collect();
    let y: Vec<f64> = (0..rows)
        .map(|r| feat(seed.wrapping_add(1), r, cols) - 5.0)
        .collect();
    (Matrix::from_rows(&data).unwrap(), y)
}

fn assert_flat_matches_boxed(params: TreeParams, seed: u64, x: &Matrix, y: &[f64]) {
    let mut flat = DecisionTree::new(params, seed).unwrap();
    flat.fit(x, y).unwrap();
    let boxed = BoxedTree::fit(params, seed, x, y).unwrap();
    assert_eq!(
        flat.leaf_count(),
        boxed.leaf_count(),
        "leaf count must survive lowering (params {params:?}, seed {seed})"
    );
    for r in 0..x.rows() {
        let row = x.row(r);
        assert_eq!(
            flat.predict_row(row).to_bits(),
            boxed.predict_row(row).to_bits(),
            "prediction diverged at row {r} (params {params:?}, seed {seed})"
        );
    }
    // Probe off-distribution rows too: traversal must agree everywhere,
    // not just on training points.
    for probe in 0..50 {
        let row: Vec<f64> = (0..x.cols())
            .map(|c| feat(seed.wrapping_add(2), probe, c) - 2.5)
            .collect();
        assert_eq!(
            flat.predict_row(&row).to_bits(),
            boxed.predict_row(&row).to_bits()
        );
    }
}

#[test]
fn seed_params_grid_is_bit_identical() {
    for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
        for max_depth in [1, 3, 10] {
            for min_samples_leaf in [1, 2, 5] {
                for max_features in [None, Some(1), Some(2), Some(64)] {
                    let params = TreeParams {
                        max_depth,
                        min_samples_leaf,
                        max_features,
                    };
                    let (x, y) = grid_data(seed, 80, 4);
                    assert_flat_matches_boxed(params, seed, &x, &y);
                }
            }
        }
    }
}

#[test]
fn duplicate_heavy_targets_are_bit_identical() {
    // Constant and few-valued targets exercise the single-leaf and
    // early-stop paths of the builder.
    let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 3) as f64]).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let params = TreeParams::default();
    assert_flat_matches_boxed(params, 5, &x, &vec![2.5; 30]);
    let few: Vec<f64> = (0..30).map(|i| (i % 2) as f64).collect();
    assert_flat_matches_boxed(params, 5, &x, &few);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_fits_are_bit_identical(
        seed in any::<u64>(),
        max_depth in 1usize..12,
        min_samples_leaf in 1usize..6,
        // 0 encodes `None` (all features) — the offline proptest
        // stand-in has no option strategy.
        max_features_raw in 0usize..5,
        points in proptest::collection::vec(
            (-50f64..50.0, -50f64..50.0, -50f64..50.0, -10f64..10.0),
            6..80,
        ),
    ) {
        let rows: Vec<Vec<f64>> = points.iter().map(|p| vec![p.0, p.1, p.2]).collect();
        let y: Vec<f64> = points.iter().map(|p| p.3).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let max_features = if max_features_raw == 0 { None } else { Some(max_features_raw) };
        let params = TreeParams { max_depth, min_samples_leaf, max_features };
        let mut flat = DecisionTree::new(params, seed).unwrap();
        flat.fit(&x, &y).unwrap();
        let boxed = BoxedTree::fit(params, seed, &x, &y).unwrap();
        prop_assert_eq!(flat.leaf_count(), boxed.leaf_count());
        for r in 0..x.rows() {
            let row = x.row(r);
            prop_assert_eq!(flat.predict_row(row).to_bits(), boxed.predict_row(row).to_bits());
        }
    }
}
