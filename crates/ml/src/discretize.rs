//! Bucket discretization of prediction targets.
//!
//! §4.2.1: "Optum divides the space of prediction into multiple buckets,
//! and then takes the upper bound of the bucket as the final
//! prediction" — e.g. with ten buckets over `[0, 1]`, a raw prediction
//! of 0.27 becomes 0.3. The evaluation (§5.2) uses 25 buckets.

use optum_types::{Error, Result};

/// Maps raw values to the upper bound of their bucket over `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use optum_ml::Discretizer;
///
/// let d = Discretizer::new(0.0, 1.0, 10).unwrap();
/// assert!((d.discretize(0.27) - 0.3).abs() < 1e-12);
/// assert_eq!(d.discretize(-5.0), 0.1);
/// assert_eq!(d.discretize(7.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discretizer {
    lo: f64,
    hi: f64,
    buckets: usize,
}

impl Discretizer {
    /// Creates a discretizer; requires `lo < hi` and at least one
    /// bucket.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Discretizer> {
        // The negated form also rejects NaN bounds, deliberately.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(lo < hi) {
            return Err(Error::InvalidConfig("need lo < hi".into()));
        }
        if buckets == 0 {
            return Err(Error::InvalidConfig("need at least one bucket".into()));
        }
        Ok(Discretizer { lo, hi, buckets })
    }

    /// The paper's evaluation configuration: 25 buckets over `[0, 1]`
    /// (normalized PSI / completion time).
    pub fn paper_default() -> Discretizer {
        Discretizer::new(0.0, 1.0, 25).expect("constants are valid")
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Index of the bucket `x` falls into, clamped to the range.
    pub fn bucket_of(&self, x: f64) -> usize {
        let width = (self.hi - self.lo) / self.buckets as f64;
        let idx = ((x - self.lo) / width).floor();
        (idx.max(0.0) as usize).min(self.buckets - 1)
    }

    /// Upper bound of the bucket `x` falls into — the discretized
    /// prediction.
    pub fn discretize(&self, x: f64) -> f64 {
        let width = (self.hi - self.lo) / self.buckets as f64;
        self.lo + width * (self.bucket_of(x) + 1) as f64
    }

    /// Discretizes a whole slice.
    pub fn discretize_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.discretize(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validates_params() {
        assert!(Discretizer::new(1.0, 1.0, 5).is_err());
        assert!(Discretizer::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn paper_example() {
        // "when the PSI is divided into ten buckets and the prediction
        // falls into the 0.2 to 0.3 bucket, the final prediction will
        // be 0.3".
        let d = Discretizer::new(0.0, 1.0, 10).unwrap();
        assert!((d.discretize(0.25) - 0.3).abs() < 1e-12);
        assert!((d.discretize(0.2) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn boundaries_clamp() {
        let d = Discretizer::new(0.0, 1.0, 4);
        let d = d.unwrap();
        assert_eq!(d.bucket_of(-1.0), 0);
        assert_eq!(d.bucket_of(2.0), 3);
        assert_eq!(d.discretize(1.0), 1.0);
    }

    #[test]
    fn default_is_25_buckets() {
        assert_eq!(Discretizer::paper_default().buckets(), 25);
    }

    proptest! {
        #[test]
        fn discretized_is_upper_bound(x in -2f64..3.0) {
            let d = Discretizer::new(0.0, 1.0, 25).unwrap();
            let v = d.discretize(x);
            // Output is one of the bucket upper bounds and >= clamped x.
            prop_assert!(v >= x.clamp(0.0, 1.0) - 1e-12);
            let steps = v * 25.0;
            prop_assert!((steps - steps.round()).abs() < 1e-9);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn idempotent(x in 0f64..1.0) {
            let d = Discretizer::paper_default();
            let once = d.discretize(x);
            // Upper bound of bucket k lands in bucket k+1's closed lower edge;
            // clamping keeps re-discretization within one bucket width.
            let twice = d.discretize(once);
            prop_assert!((twice - once).abs() <= 1.0 / 25.0 + 1e-12);
        }
    }
}
