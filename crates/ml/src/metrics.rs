//! Model-quality metrics beyond the error metrics in `optum-stats`.

/// Coefficient of determination `R²`.
///
/// Returns `None` when the inputs mismatch in length, are empty, or the
/// targets have zero variance.
///
/// # Examples
///
/// ```
/// use optum_ml::r2_score;
///
/// let perfect = r2_score(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
/// assert!((perfect - 1.0).abs() < 1e-12);
/// ```
pub fn r2_score(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    if predicted.len() != actual.len() || actual.is_empty() {
        return None;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_mean_predictions() {
        assert!((r2_score(&[1.0, 2.0], &[1.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        // Predicting the mean gives R² = 0.
        let r = r2_score(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_is_negative() {
        let r = r2_score(&[3.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!(r < 0.0);
    }

    #[test]
    fn undefined_cases() {
        assert_eq!(r2_score(&[], &[]), None);
        assert_eq!(r2_score(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(r2_score(&[1.0, 2.0], &[5.0, 5.0]), None);
    }
}
