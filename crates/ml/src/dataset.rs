//! Dataset container, train/test splitting and feature standardization.

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::linalg::Matrix;

/// A supervised-learning dataset: a feature matrix plus a target vector
/// of matching length.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature rows (one per sample).
    pub x: Matrix,
    /// Target values.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Bundles features and targets; lengths must match.
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Dataset> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData(format!(
                "{} feature rows vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        Ok(Dataset { x, y })
    }

    /// Builds a dataset from `(features, target)` sample tuples.
    pub fn from_samples(samples: &[(Vec<f64>, f64)]) -> Result<Dataset> {
        let rows: Vec<Vec<f64>> = samples.iter().map(|(f, _)| f.clone()).collect();
        let y: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        Dataset::new(Matrix::from_rows(&rows)?, y)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset has no samples (unreachable through the
    /// constructors, which require at least one row).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Selects a subset of samples by index (indices may repeat, as in
    /// a bootstrap resample).
    pub fn select(&self, indices: &[usize]) -> Result<Dataset> {
        if indices.is_empty() {
            return Err(Error::InvalidData("empty selection".into()));
        }
        let rows: Vec<Vec<f64>> = indices.iter().map(|&i| self.x.row(i).to_vec()).collect();
        let y: Vec<f64> = indices.iter().map(|&i| self.y[i]).collect();
        Dataset::new(Matrix::from_rows(&rows)?, y)
    }
}

/// Splits a dataset into shuffled train/test parts; `test_fraction` in
/// `(0, 1)`. Deterministic for a given seed.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(Error::InvalidConfig(
            "test_fraction must be in (0, 1)".into(),
        ));
    }
    let n = data.len();
    let n_test = ((n as f64) * test_fraction).round().max(1.0) as usize;
    if n_test >= n {
        return Err(Error::InvalidData("not enough samples to split".into()));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let test = data.select(&idx[..n_test])?;
    let train = data.select(&idx[n_test..])?;
    Ok((train, test))
}

/// Z-score feature standardizer fitted on training data.
///
/// Gradient-based models (SVR, MLP) need standardized inputs to
/// converge; tree models do not, but standardization never hurts them.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits per-column mean and std; constant columns get std 1 so they
    /// pass through centered.
    pub fn fit(x: &Matrix) -> Standardizer {
        let cols = x.cols();
        let n = x.rows() as f64;
        let mut means = vec![0.0; cols];
        let mut stds = vec![0.0; cols];
        for c in 0..cols {
            let col = x.col(c);
            let m = col.iter().sum::<f64>() / n;
            let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n;
            means[c] = m;
            stds[c] = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        }
        Standardizer { means, stds }
    }

    /// Transforms a matrix column-wise.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                out.set(r, c, (x.get(r, c) - self.means[c]) / self.stds[c]);
            }
        }
        out
    }

    /// Transforms one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(c, v)| (v - self.means[c]) / self.stds[c])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let samples: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|i| (vec![i as f64, (i * i) as f64], i as f64 * 2.0))
            .collect();
        Dataset::from_samples(&samples).unwrap()
    }

    #[test]
    fn new_rejects_mismatch() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(Dataset::new(x, vec![1.0]).is_err());
    }

    #[test]
    fn split_partitions_and_is_deterministic() {
        let d = toy();
        let (tr1, te1) = train_test_split(&d, 0.25, 7).unwrap();
        let (tr2, te2) = train_test_split(&d, 0.25, 7).unwrap();
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), d.len());
        assert_eq!(te1.len(), 5);
        // Different seed shuffles differently.
        let (_, te3) = train_test_split(&d, 0.25, 8).unwrap();
        assert_ne!(te1, te3);
    }

    #[test]
    fn split_validates_fraction() {
        let d = toy();
        assert!(train_test_split(&d, 0.0, 1).is_err());
        assert!(train_test_split(&d, 1.0, 1).is_err());
    }

    #[test]
    fn select_supports_bootstrap_repeats() {
        let d = toy();
        let s = d.select(&[0, 0, 3]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.y, vec![0.0, 0.0, 6.0]);
        assert!(d.select(&[]).is_err());
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let d = toy();
        let s = Standardizer::fit(&d.x);
        let t = s.transform(&d.x);
        for c in 0..t.cols() {
            let col = t.col(c);
            let m = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / col.len() as f64;
            assert!(m.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 0), 0.0);
        assert_eq!(s.transform_row(&[5.0, 1.5]), vec![0.0, 0.0]);
    }
}
