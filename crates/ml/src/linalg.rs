//! Minimal dense linear algebra: row-major matrices and a
//! partial-pivoting Gaussian solver, sufficient for the closed-form
//! linear models.

use optum_types::{Error, Result};

/// A dense row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use optum_ml::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = a.matmul(&a.transpose()).unwrap();
/// assert_eq!(b.get(0, 0), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices; all rows must share one width
    /// and there must be at least one row and one column.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix> {
        let Some(first) = rows.first() else {
            return Err(Error::InvalidData("matrix needs at least one row".into()));
        };
        let cols = first.len();
        if cols == 0 {
            return Err(Error::InvalidData(
                "matrix needs at least one column".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(Error::InvalidData(format!(
                    "ragged rows: expected {cols} columns, found {}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols || rows == 0 || cols == 0 {
            return Err(Error::InvalidData(format!(
                "buffer of {} does not fill {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Consumes the matrix, returning its flat row-major buffer, so a
    /// scratch vector round-tripped through [`Matrix::from_vec`] can
    /// be reclaimed without reallocating.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(Error::InvalidData(format!(
                "dimension mismatch: {}x{} · {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(Error::InvalidData(format!(
                "dimension mismatch: {}x{} · len {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// In-place addition of `lambda` to the diagonal (ridge shrinkage).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let v = self.get(i, i);
            self.set(i, i, v + lambda);
        }
    }

    /// Solves `self · x = b` by Gaussian elimination with partial
    /// pivoting. Requires a square system; fails on (numerically)
    /// singular matrices.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(Error::InvalidData("solve requires a square matrix".into()));
        }
        if b.len() != self.rows {
            return Err(Error::InvalidData("rhs length mismatch".into()));
        }
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot: the row with the largest magnitude in this column.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[r1 * n + col]
                        .abs()
                        .partial_cmp(&a[r2 * n + col].abs())
                        .expect("matrix entries are finite")
                })
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-12 {
                return Err(Error::InvalidData("singular matrix".into()));
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            for r in (col + 1)..n {
                let factor = a[r * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for j in (col + 1)..n {
                sum -= a[col * n + j] * x[j];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a.get(0, 0), 0.5);
        assert_eq!(a.get(1, 1), 0.5);
        assert_eq!(a.get(0, 1), 0.0);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_recovers_rhs(
            entries in proptest::collection::vec(-10f64..10.0, 9),
            b in proptest::collection::vec(-10f64..10.0, 3),
        ) {
            let mut a = Matrix::from_vec(3, 3, entries).unwrap();
            // Diagonal dominance guarantees non-singularity.
            for i in 0..3 {
                let v = a.get(i, i);
                a.set(i, i, v + 40.0);
            }
            let x = a.solve(&b).unwrap();
            let back = a.matvec(&x).unwrap();
            for i in 0..3 {
                prop_assert!((back[i] - b[i]).abs() < 1e-6);
            }
        }
    }
}
