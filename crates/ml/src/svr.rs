//! Linear ε-insensitive support vector regression trained by
//! stochastic gradient descent.
//!
//! Minimizes the L2-loss SVR primal
//! `λ/2‖w‖² + (1/n)Σ max(0, |wᵀxᵢ + b − yᵢ| − ε)²`
//! (the smooth variant solved by LIBLINEAR's `-s 11`), whose gradient is
//! proportional to the tube-exceeding error and therefore converges at
//! least-squares speed. Inputs are standardized internally so the
//! step-size schedule is scale-free.

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Standardizer;
use crate::linalg::Matrix;
use crate::Regressor;

/// Hyper-parameters and learned state of a linear SVR.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvr {
    epsilon: f64,
    lambda: f64,
    epochs: usize,
    seed: u64,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
}

impl LinearSvr {
    /// Creates an unfitted SVR.
    ///
    /// * `epsilon` — insensitivity tube half-width (≥ 0).
    /// * `lambda` — L2 regularization strength (> 0).
    /// * `epochs` — passes over the shuffled training data.
    pub fn new(epsilon: f64, lambda: f64, epochs: usize, seed: u64) -> Result<LinearSvr> {
        if epsilon < 0.0 || lambda <= 0.0 || epochs == 0 {
            return Err(Error::InvalidConfig(
                "need epsilon >= 0, lambda > 0, epochs > 0".into(),
            ));
        }
        Ok(LinearSvr {
            epsilon,
            lambda,
            epochs,
            seed,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        })
    }

    /// Defaults that work well on the profiling feature scales.
    pub fn default_params(seed: u64) -> LinearSvr {
        LinearSvr::new(0.01, 1e-4, 60, seed).expect("default parameters are valid")
    }

    fn raw_predict(&self, row: &[f64]) -> f64 {
        let mut acc = self.bias;
        for (w, v) in self.weights.iter().zip(row) {
            acc += w * v;
        }
        acc
    }
}

impl Regressor for LinearSvr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = xs.rows();
        let d = xs.cols();
        self.weights = vec![0.0; d];
        self.bias = y.iter().sum::<f64>() / n as f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut step_count = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                step_count += 1;
                // Decaying step size; the 1e-3 decay constant reaches a
                // ~50x reduction by the end of a typical run.
                let eta = 0.05 / (1.0 + 1e-3 * step_count as f64);
                let row = xs.row(i);
                let err = self.raw_predict(row) - y[i];
                // Gradient of the squared epsilon-insensitive loss:
                // zero inside the tube, proportional outside.
                let g = if err > self.epsilon {
                    err - self.epsilon
                } else if err < -self.epsilon {
                    err + self.epsilon
                } else {
                    0.0
                };
                for (w, v) in self.weights.iter_mut().zip(row) {
                    *w -= eta * (self.lambda * *w + g * v);
                }
                self.bias -= eta * g;
            }
        }
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        self.raw_predict(&scaler.transform_row(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_params() {
        assert!(LinearSvr::new(-0.1, 1.0, 10, 0).is_err());
        assert!(LinearSvr::new(0.1, 0.0, 10, 0).is_err());
        assert!(LinearSvr::new(0.1, 1.0, 0, 0).is_err());
    }

    #[test]
    fn fits_linear_relationship() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut svr = LinearSvr::new(0.01, 1e-5, 120, 3).unwrap();
        svr.fit(&x, &y).unwrap();
        for probe in [0.5, 2.0, 4.0] {
            let pred = svr.predict_row(&[probe]);
            assert!(
                (pred - (2.0 * probe + 1.0)).abs() < 0.25,
                "probe {probe}: got {pred}"
            );
        }
    }

    #[test]
    fn tube_ignores_small_deviations() {
        // All targets within the epsilon tube of their mean: the loss
        // gradient is zero everywhere, so the model never moves off its
        // mean-bias initialization.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64]).collect();
        let y: Vec<f64> = (0..40)
            .map(|i| 5.0 + 0.04 * ((i % 3) as f64 - 1.0))
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut svr = LinearSvr::new(0.1, 1e-4, 80, 1).unwrap();
        svr.fit(&x, &y).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        for probe in [0.0, 3.0, 6.0] {
            let pred = svr.predict_row(&[probe]);
            assert!((pred - mean).abs() < 1e-9, "probe {probe}: got {pred}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = LinearSvr::default_params(9);
        let mut b = LinearSvr::default_params(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[13.0]), b.predict_row(&[13.0]));
    }

    #[test]
    fn length_mismatch_rejected() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut svr = LinearSvr::default_params(0);
        assert!(svr.fit(&x, &[1.0, 2.0]).is_err());
    }
}
