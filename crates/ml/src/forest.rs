//! Random-Forest regressor: bagged CART trees with per-split feature
//! subsampling.
//!
//! The model the paper's Interference Profiler adopts after comparing
//! five regressors (§4.2.1, Fig. 18).

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeParams};
use crate::Regressor;

/// Tuning knobs for a random forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters; `max_features` of `None` is replaced by
    /// `ceil(d / 3)` (the regression heuristic) at fit time.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> ForestParams {
        ForestParams {
            n_trees: 30,
            tree: TreeParams {
                max_depth: 10,
                min_samples_leaf: 2,
                max_features: None,
            },
        }
    }
}

/// A bagging ensemble of regression trees.
///
/// # Examples
///
/// ```
/// use optum_ml::{Matrix, RandomForest, Regressor};
///
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..30).map(|i| if i < 15 { 0.0 } else { 1.0 }).collect();
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut rf = RandomForest::default_params(7);
/// rf.fit(&x, &y).unwrap();
/// assert!(rf.predict_row(&[3.0]) < 0.3);
/// assert!(rf.predict_row(&[25.0]) > 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: ForestParams,
    seed: u64,
    threads: usize,
    inv_tree_count: f64,
    trees: Vec<DecisionTree>,
}

/// Model equality: parameters, seed, and fitted trees. The execution
/// config (`threads`) is deliberately excluded — the same model fitted
/// with different worker counts is the same model.
impl PartialEq for RandomForest {
    fn eq(&self, other: &RandomForest) -> bool {
        self.params == other.params
            && self.seed == other.seed
            && self.inv_tree_count == other.inv_tree_count
            && self.trees == other.trees
    }
}

impl RandomForest {
    /// Creates an unfitted forest. Training and batch prediction run
    /// serially by default; see [`RandomForest::set_threads`].
    pub fn new(params: ForestParams, seed: u64) -> Result<RandomForest> {
        if params.n_trees == 0 {
            return Err(Error::InvalidConfig("n_trees must be > 0".into()));
        }
        // Validate tree params early by constructing a probe tree.
        DecisionTree::new(params.tree, 0)?;
        Ok(RandomForest {
            params,
            seed,
            threads: 1,
            inv_tree_count: 0.0,
            trees: Vec::new(),
        })
    }

    /// Creates a forest with [`ForestParams::default`].
    pub fn default_params(seed: u64) -> RandomForest {
        RandomForest::new(ForestParams::default(), seed).expect("defaults are valid")
    }

    /// Sets the worker-thread count for [`Regressor::fit`] and
    /// [`RandomForest::predict_matrix`]: `1` is serial (the default),
    /// `0` resolves to `OPTUM_THREADS` / the machine's parallelism,
    /// any other value is taken literally. The fitted model and its
    /// predictions are bit-identical for every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Builder-style [`RandomForest::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> RandomForest {
        self.set_threads(threads);
        self
    }

    /// Configured worker-thread count (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Predicts every row of `x`, with the fitted check hoisted out of
    /// the per-row loop and rows fanned out across the configured
    /// worker threads. Output order always matches row order.
    pub fn predict_matrix(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(x, &mut out);
        out
    }

    /// Batched prediction into a caller-owned buffer, the allocation-
    /// free core of [`RandomForest::predict_matrix`]: `out` is resized
    /// to `x.rows()` and overwritten, so one scratch vector can be
    /// reused across calls. Rows are accumulated tree-outer — every
    /// row walks one tree's contiguous node arrays while they are hot
    /// in cache — which adds each row's tree predictions in forest
    /// order, exactly the per-row `sum()` order, so results are
    /// bit-identical to [`Regressor::predict_row`] per row for any
    /// thread count.
    pub fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        let _predict = optum_obs::span!("ml.forest.predict");
        assert!(!self.trees.is_empty(), "fit before predict");
        let n = x.rows();
        out.clear();
        out.resize(n, 0.0);
        let threads = optum_parallel::resolve_threads(self.threads).min(n.max(1));
        if threads <= 1 || n <= 1 {
            Self::predict_range(&self.trees, self.inv_tree_count, x, 0, out);
            return;
        }
        // Contiguous row chunks, one per worker; chunk outputs are
        // copied back in row order, so the result is chunk-invariant.
        let chunk = n.div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let parts = optum_parallel::parallel_map_threads(threads, &ranges, |_, &(lo, hi)| {
            let mut part = vec![0.0; hi - lo];
            Self::predict_range(&self.trees, self.inv_tree_count, x, lo, &mut part);
            part
        });
        for (&(lo, hi), part) in ranges.iter().zip(parts) {
            out[lo..hi].copy_from_slice(&part);
        }
    }

    /// Tree-outer prediction of rows `lo..lo + out.len()` of `x`.
    fn predict_range(trees: &[DecisionTree], inv: f64, x: &Matrix, lo: usize, out: &mut [f64]) {
        for t in trees {
            for (k, acc) in out.iter_mut().enumerate() {
                *acc += t.predict_row(x.row(lo + k));
            }
        }
        for acc in out.iter_mut() {
            *acc *= inv;
        }
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let _fit = optum_obs::span!("ml.forest.fit");
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        let n = x.rows();
        if n == 0 {
            return Err(Error::InvalidData("empty training set".into()));
        }
        let d = x.cols();
        let mut tree_params = self.params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some((d / 3).max(1));
        }
        // Draw every bootstrap sample from the master RNG in tree
        // order before fanning out, so the stream consumed is exactly
        // the serial loop's and the fitted forest is bit-identical for
        // any thread count. Trees then fit on index views of `x`
        // instead of copied bootstrap matrices.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samples: Vec<Vec<usize>> = (0..self.params.n_trees)
            .map(|_| (0..n).map(|_| rng.gen_range(0..n)).collect())
            .collect();
        let seed = self.seed;
        let fitted = optum_parallel::parallel_map_threads(self.threads, &samples, |t, indices| {
            let mut tree = DecisionTree::new(tree_params, seed.wrapping_add(t as u64 + 1))?;
            tree.fit_sample(x, y, indices)?;
            Ok(tree)
        });
        self.trees = fitted.into_iter().collect::<Result<Vec<DecisionTree>>>()?;
        self.inv_tree_count = 1.0 / self.trees.len() as f64;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "fit before predict");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() * self.inv_tree_count
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_matrix(x)
    }

    fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        RandomForest::predict_into(self, x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn validates_params() {
        let bad = ForestParams {
            n_trees: 0,
            ..ForestParams::default()
        };
        assert!(RandomForest::new(bad, 0).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 3) as f64 * 4.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = RandomForest::default_params(5);
        let mut b = RandomForest::default_params(5);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[10.0, 1.0]), b.predict_row(&[10.0, 1.0]));
        assert_eq!(a.tree_count(), 30);
    }

    #[test]
    fn beats_single_tree_on_nonlinear_noisy_target() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        // Nonlinear target with noise: y = sin-ish threshold interaction.
        for _ in 0..300 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.05..0.05);
            rows.push(vec![a, b]);
            y.push(((a - 0.5).max(0.0) * 2.0 + (b * 3.0).sin().abs() * 0.5 + noise).max(0.01));
        }
        let split = 250;
        let train_rows: Vec<Vec<f64>> = rows[..split].to_vec();
        let train_x = Matrix::from_rows(&train_rows).unwrap();
        let mut rf = RandomForest::default_params(1);
        rf.fit(&train_x, &y[..split]).unwrap();
        let preds: Vec<f64> = rows[split..].iter().map(|r| rf.predict_row(r)).collect();
        let r2 = r2_score(&preds, &y[split..]).unwrap();
        assert!(r2 > 0.6, "forest R2 {r2}");
    }

    #[test]
    fn parallel_fit_matches_serial_bitwise() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| ((i % 7) * (i % 3)) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut serial = RandomForest::default_params(11);
        serial.fit(&x, &y).unwrap();
        for threads in [2, 4, 8] {
            let mut par = RandomForest::default_params(11).with_threads(threads);
            par.fit(&x, &y).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            for r in rows.iter() {
                assert_eq!(
                    serial.predict_row(r).to_bits(),
                    par.predict_row(r).to_bits()
                );
            }
        }
    }

    #[test]
    fn predict_matrix_matches_per_row() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut rf = RandomForest::default_params(2).with_threads(4);
        rf.fit(&x, &y).unwrap();
        let batch = rf.predict_matrix(&x);
        let single: Vec<f64> = (0..x.rows()).map(|i| rf.predict_row(x.row(i))).collect();
        assert_eq!(batch, single);
        assert_eq!(Regressor::predict(&rf, &x), batch);
    }

    #[test]
    fn predict_into_reuses_buffer_across_thread_counts() {
        let rows: Vec<Vec<f64>> = (0..37).map(|i| vec![i as f64, (i % 4) as f64]).collect();
        let y: Vec<f64> = (0..37).map(|i| (i % 4) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut rf = RandomForest::default_params(6);
        rf.fit(&x, &y).unwrap();
        let serial: Vec<f64> = (0..x.rows()).map(|i| rf.predict_row(x.row(i))).collect();
        // One scratch buffer reused across calls, stale contents and
        // wrong length included.
        let mut buf = vec![f64::NAN; 3];
        for threads in [1, 2, 4, 8] {
            rf.set_threads(threads);
            rf.predict_into(&x, &mut buf);
            assert_eq!(buf.len(), x.rows());
            for (a, b) in buf.iter().zip(&serial) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn averaging_smooths_predictions() {
        // Forest output is an average, so it lies within tree outputs' range.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut rf = RandomForest::default_params(3);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_row(&[10.0]);
        assert!((0.0..=19.0).contains(&p));
    }
}
