//! Random-Forest regressor: bagged CART trees with per-split feature
//! subsampling.
//!
//! The model the paper's Interference Profiler adopts after comparing
//! five regressors (§4.2.1, Fig. 18).

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeParams};
use crate::Regressor;

/// Tuning knobs for a random forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters; `max_features` of `None` is replaced by
    /// `ceil(d / 3)` (the regression heuristic) at fit time.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> ForestParams {
        ForestParams {
            n_trees: 30,
            tree: TreeParams {
                max_depth: 10,
                min_samples_leaf: 2,
                max_features: None,
            },
        }
    }
}

/// A bagging ensemble of regression trees.
///
/// # Examples
///
/// ```
/// use optum_ml::{Matrix, RandomForest, Regressor};
///
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..30).map(|i| if i < 15 { 0.0 } else { 1.0 }).collect();
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut rf = RandomForest::default_params(7);
/// rf.fit(&x, &y).unwrap();
/// assert!(rf.predict_row(&[3.0]) < 0.3);
/// assert!(rf.predict_row(&[25.0]) > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: ForestParams, seed: u64) -> Result<RandomForest> {
        if params.n_trees == 0 {
            return Err(Error::InvalidConfig("n_trees must be > 0".into()));
        }
        // Validate tree params early by constructing a probe tree.
        DecisionTree::new(params.tree, 0)?;
        Ok(RandomForest {
            params,
            seed,
            trees: Vec::new(),
        })
    }

    /// Creates a forest with [`ForestParams::default`].
    pub fn default_params(seed: u64) -> RandomForest {
        RandomForest::new(ForestParams::default(), seed).expect("defaults are valid")
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        let n = x.rows();
        let d = x.cols();
        let mut tree_params = self.params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some((d / 3).max(1));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for t in 0..self.params.n_trees {
            // Bootstrap resample.
            let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let rows: Vec<Vec<f64>> = indices.iter().map(|&i| x.row(i).to_vec()).collect();
            let targets: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
            let bx = Matrix::from_rows(&rows)?;
            let mut tree = DecisionTree::new(tree_params, self.seed.wrapping_add(t as u64 + 1))?;
            tree.fit(&bx, &targets)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "fit before predict");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn validates_params() {
        let bad = ForestParams {
            n_trees: 0,
            ..ForestParams::default()
        };
        assert!(RandomForest::new(bad, 0).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 3) as f64 * 4.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = RandomForest::default_params(5);
        let mut b = RandomForest::default_params(5);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[10.0, 1.0]), b.predict_row(&[10.0, 1.0]));
        assert_eq!(a.tree_count(), 30);
    }

    #[test]
    fn beats_single_tree_on_nonlinear_noisy_target() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        // Nonlinear target with noise: y = sin-ish threshold interaction.
        for _ in 0..300 {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.05..0.05);
            rows.push(vec![a, b]);
            y.push(((a - 0.5).max(0.0) * 2.0 + (b * 3.0).sin().abs() * 0.5 + noise).max(0.01));
        }
        let split = 250;
        let train_rows: Vec<Vec<f64>> = rows[..split].to_vec();
        let train_x = Matrix::from_rows(&train_rows).unwrap();
        let mut rf = RandomForest::default_params(1);
        rf.fit(&train_x, &y[..split]).unwrap();
        let preds: Vec<f64> = rows[split..].iter().map(|r| rf.predict_row(r)).collect();
        let r2 = r2_score(&preds, &y[split..]).unwrap();
        assert!(r2 > 0.6, "forest R2 {r2}");
    }

    #[test]
    fn averaging_smooths_predictions() {
        // Forest output is an average, so it lies within tree outputs' range.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut rf = RandomForest::default_params(3);
        rf.fit(&x, &y).unwrap();
        let p = rf.predict_row(&[10.0]);
        assert!((0.0..=19.0).contains(&p));
    }
}
