//! Multi-layer perceptron regressor trained by mini-batch SGD.
//!
//! One ReLU hidden layer with He initialization and a linear output;
//! inputs are standardized internally. Matches the "MLP Regressor"
//! baseline of Fig. 18.

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Standardizer;
use crate::linalg::Matrix;
use crate::stats_normal;
use crate::Regressor;

/// A one-hidden-layer MLP regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpRegressor {
    hidden: usize,
    lr: f64,
    epochs: usize,
    batch: usize,
    seed: u64,
    // Learned parameters: w1 is hidden×input, b1 hidden, w2 hidden, b2 scalar.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    scaler: Option<Standardizer>,
    target_mean: f64,
    target_std: f64,
}

impl MlpRegressor {
    /// Creates an unfitted MLP.
    pub fn new(hidden: usize, lr: f64, epochs: usize, batch: usize, seed: u64) -> Result<Self> {
        if hidden == 0 || lr <= 0.0 || epochs == 0 || batch == 0 {
            return Err(Error::InvalidConfig(
                "need hidden > 0, lr > 0, epochs > 0, batch > 0".into(),
            ));
        }
        Ok(MlpRegressor {
            hidden,
            lr,
            epochs,
            batch,
            seed,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            scaler: None,
            target_mean: 0.0,
            target_std: 1.0,
        })
    }

    /// Defaults sized for the 4–5 feature profiling problems.
    pub fn default_params(seed: u64) -> MlpRegressor {
        MlpRegressor::new(16, 0.01, 80, 16, seed).expect("default parameters are valid")
    }

    /// Forward pass on a standardized row, returning (hidden
    /// activations, standardized output).
    fn forward(&self, row: &[f64]) -> (Vec<f64>, f64) {
        let h: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z: f64 = w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                z.max(0.0)
            })
            .collect();
        let out = self.w2.iter().zip(&h).map(|(w, a)| w * a).sum::<f64>() + self.b2;
        (h, out)
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let n = xs.rows();
        let d = xs.cols();
        // Standardize the target too: keeps gradients O(1).
        self.target_mean = y.iter().sum::<f64>() / n as f64;
        let var = y
            .iter()
            .map(|v| (v - self.target_mean).powi(2))
            .sum::<f64>()
            / n as f64;
        self.target_std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        let yt: Vec<f64> = y
            .iter()
            .map(|v| (v - self.target_mean) / self.target_std)
            .collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        // He initialization for the ReLU layer.
        let he = (2.0 / d as f64).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| (0..d).map(|_| stats_normal(&mut rng) * he).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden];
        let out_scale = (1.0 / self.hidden as f64).sqrt();
        self.w2 = (0..self.hidden)
            .map(|_| stats_normal(&mut rng) * out_scale)
            .collect();
        self.b2 = 0.0;

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch) {
                // Accumulate gradients over the mini-batch.
                let mut gw1 = vec![vec![0.0; d]; self.hidden];
                let mut gb1 = vec![0.0; self.hidden];
                let mut gw2 = vec![0.0; self.hidden];
                let mut gb2 = 0.0;
                for &i in chunk {
                    let row = xs.row(i);
                    let (h, out) = self.forward(row);
                    let err = out - yt[i];
                    gb2 += err;
                    for j in 0..self.hidden {
                        gw2[j] += err * h[j];
                        if h[j] > 0.0 {
                            let delta = err * self.w2[j];
                            gb1[j] += delta;
                            for (g, xv) in gw1[j].iter_mut().zip(row) {
                                *g += delta * xv;
                            }
                        }
                    }
                }
                let scale = self.lr / chunk.len() as f64;
                for j in 0..self.hidden {
                    self.w2[j] -= scale * gw2[j];
                    self.b1[j] -= scale * gb1[j];
                    for (w, g) in self.w1[j].iter_mut().zip(&gw1[j]) {
                        *w -= scale * g;
                    }
                }
                self.b2 -= scale * gb2;
            }
        }
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("fit before predict");
        let (_, out) = self.forward(&scaler.transform_row(row));
        out * self.target_std + self.target_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_params() {
        assert!(MlpRegressor::new(0, 0.1, 10, 4, 0).is_err());
        assert!(MlpRegressor::new(4, 0.0, 10, 4, 0).is_err());
        assert!(MlpRegressor::new(4, 0.1, 0, 4, 0).is_err());
        assert!(MlpRegressor::new(4, 0.1, 10, 0, 0).is_err());
    }

    #[test]
    fn learns_linear_function() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 1.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut mlp = MlpRegressor::new(16, 0.02, 200, 8, 5).unwrap();
        mlp.fit(&x, &y).unwrap();
        for probe in [0.5, 2.0, 3.5] {
            let pred = mlp.predict_row(&[probe]);
            assert!(
                (pred - (3.0 * probe - 1.0)).abs() < 0.4,
                "probe {probe}: got {pred}"
            );
        }
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = relu-like kink at x = 1: the network must bend.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 25.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] - 1.0).max(0.0) * 2.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut mlp = MlpRegressor::new(24, 0.02, 300, 10, 11).unwrap();
        mlp.fit(&x, &y).unwrap();
        assert!(mlp.predict_row(&[0.5]).abs() < 0.35);
        let high = mlp.predict_row(&[3.0]);
        assert!((high - 4.0).abs() < 0.6, "got {high}");
    }

    #[test]
    fn deterministic_for_seed() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = MlpRegressor::default_params(2);
        let mut b = MlpRegressor::default_params(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[7.0]), b.predict_row(&[7.0]));
    }
}
