//! From-scratch machine-learning library for the Optum profilers.
//!
//! The paper's Offline Profiler (§4.2.1) compares Linear Regression,
//! Ridge, Support Vector Regression, Multi-layer Perceptron and Random
//! Forest models, adopting Random Forest for its accuracy (Fig. 18).
//! The offline crate registry carries no ML crates, so this crate
//! implements all five regressors, the dense linear algebra they need,
//! the paper's bucket discretization of prediction targets, and the
//! dataset utilities used for train/test evaluation.
//!
//! All models implement [`Regressor`]; randomized models take explicit
//! seeds so results are reproducible.

pub mod dataset;
pub mod discretize;
pub mod forest;
pub mod gbdt;
pub mod linalg;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod svr;
pub mod tree;

pub use dataset::{train_test_split, Dataset, Standardizer};
pub use discretize::Discretizer;
pub use forest::{ForestParams, RandomForest};
pub use gbdt::{GbdtParams, GradientBoost};
pub use linalg::Matrix;
pub use linear::{LinearRegression, RidgeRegression};
pub use metrics::r2_score;
pub use mlp::MlpRegressor;
pub use svr::LinearSvr;
#[doc(hidden)]
pub use tree::BoxedTree;
pub use tree::{DecisionTree, TreeParams};

use optum_types::Result;

/// Draws a standard-normal variate (shared by the randomized models).
pub(crate) fn stats_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    optum_stats::Normal::standard_sample(rng)
}

/// A trainable regression model mapping feature rows to a scalar target.
pub trait Regressor {
    /// Fits the model on a feature matrix (one row per sample) and a
    /// target vector of matching length.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()>;

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called before [`Regressor::fit`]
    /// or with a row of the wrong width; use [`Regressor::predict`] for
    /// checked batch inference.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predicts targets for every row of a matrix.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Predicts targets for every row of `x` into a caller-owned
    /// buffer (cleared and refilled), so batch callers can reuse one
    /// scratch vector across calls. Bit-identical to
    /// [`Regressor::predict`].
    fn predict_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..x.rows()).map(|i| self.predict_row(x.row(i))));
    }
}
