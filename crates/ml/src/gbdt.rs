//! Gradient-boosted regression trees.
//!
//! Not part of the paper's five-model comparison — included as an
//! extension: boosting is the other obvious ensemble family, and the
//! Fig. 18 harness accepts any [`Regressor`].

use optum_types::{Error, Result};

use crate::linalg::Matrix;
use crate::tree::{DecisionTree, TreeParams};
use crate::Regressor;

/// Tuning knobs for gradient boosting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree parameters (kept shallow: boosting wants weak
    /// learners).
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> GbdtParams {
        GbdtParams {
            n_rounds: 60,
            learning_rate: 0.15,
            tree: TreeParams {
                max_depth: 4,
                min_samples_leaf: 4,
                max_features: None,
            },
        }
    }
}

/// A least-squares gradient-boosting ensemble: each round fits a
/// shallow tree to the current residuals.
///
/// # Examples
///
/// ```
/// use optum_ml::{GradientBoost, Matrix, Regressor};
///
/// let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
/// let x = Matrix::from_rows(&rows).unwrap();
/// let mut gb = GradientBoost::default_params(3);
/// gb.fit(&x, &y).unwrap();
/// assert!((gb.predict_row(&[5.0]) - 1.0).abs() < 0.5);
/// assert!((gb.predict_row(&[35.0]) - 5.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoost {
    params: GbdtParams,
    seed: u64,
    base: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoost {
    /// Creates an unfitted booster.
    pub fn new(params: GbdtParams, seed: u64) -> Result<GradientBoost> {
        if params.n_rounds == 0 {
            return Err(Error::InvalidConfig("n_rounds must be > 0".into()));
        }
        if params.learning_rate <= 0.0 || params.learning_rate > 1.0 {
            return Err(Error::InvalidConfig(
                "learning_rate must be in (0, 1]".into(),
            ));
        }
        DecisionTree::new(params.tree, 0)?;
        Ok(GradientBoost {
            params,
            seed,
            base: 0.0,
            trees: Vec::new(),
        })
    }

    /// Creates a booster with [`GbdtParams::default`].
    pub fn default_params(seed: u64) -> GradientBoost {
        GradientBoost::new(GbdtParams::default(), seed).expect("defaults are valid")
    }

    /// Number of fitted rounds.
    pub fn round_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for GradientBoost {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        self.trees.clear();
        let mut residuals: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        for round in 0..self.params.n_rounds {
            let mut tree =
                DecisionTree::new(self.params.tree, self.seed.wrapping_add(round as u64))?;
            tree.fit(x, &residuals)?;
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= self.params.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
            // Early stop when the residual energy is exhausted.
            let sse: f64 = residuals.iter().map(|r| r * r).sum();
            if sse < 1e-10 {
                break;
            }
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "fit before predict");
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn validates_params() {
        let bad = GbdtParams {
            n_rounds: 0,
            ..GbdtParams::default()
        };
        assert!(GradientBoost::new(bad, 0).is_err());
        let bad2 = GbdtParams {
            learning_rate: 0.0,
            ..GbdtParams::default()
        };
        assert!(GradientBoost::new(bad2, 0).is_err());
        let bad3 = GbdtParams {
            learning_rate: 1.5,
            ..GbdtParams::default()
        };
        assert!(GradientBoost::new(bad3, 0).is_err());
    }

    #[test]
    fn fits_nonlinear_target_better_than_one_weak_tree() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 50.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * 2.2).sin() + 0.5 * (r[0] - 2.0).max(0.0))
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();

        let mut gb = GradientBoost::default_params(1);
        gb.fit(&x, &y).unwrap();
        let gb_pred = gb.predict(&x);
        let gb_r2 = r2_score(&gb_pred, &y).unwrap();

        let mut weak = DecisionTree::new(
            TreeParams {
                max_depth: 4,
                min_samples_leaf: 4,
                max_features: None,
            },
            1,
        )
        .unwrap();
        weak.fit(&x, &y).unwrap();
        let weak_r2 = r2_score(&weak.predict(&x), &y).unwrap();

        assert!(
            gb_r2 > weak_r2,
            "boosting {gb_r2:.3} <= single weak tree {weak_r2:.3}"
        );
        assert!(gb_r2 > 0.95, "boosted R2 {gb_r2:.3}");
    }

    #[test]
    fn early_stops_on_pure_targets() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let x = Matrix::from_rows(&rows).unwrap();
        let mut gb = GradientBoost::default_params(0);
        gb.fit(&x, &y).unwrap();
        assert!(
            gb.round_count() <= 2,
            "ran {} rounds on constant target",
            gb.round_count()
        );
        assert!((gb.predict_row(&[5.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut a = GradientBoost::default_params(9);
        let mut b = GradientBoost::default_params(9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_row(&[25.0, 4.0]), b.predict_row(&[25.0, 4.0]));
    }
}
