//! Closed-form linear models: ordinary least squares and Ridge.

use optum_types::{Error, Result};

use crate::linalg::Matrix;
use crate::Regressor;

/// Appends a bias column of ones to a feature matrix.
fn with_bias(x: &Matrix) -> Matrix {
    let mut rows = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let mut row = x.row(r).to_vec();
        row.push(1.0);
        rows.push(row);
    }
    Matrix::from_rows(&rows).expect("bias-augmented rows are rectangular")
}

/// Solves the (possibly ridge-regularized) normal equations
/// `(XᵀX + λI)w = Xᵀy`. The bias coefficient is not penalized.
fn solve_normal_equations(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(Error::InvalidData("feature/target length mismatch".into()));
    }
    let xb = with_bias(x);
    let xt = xb.transpose();
    let mut xtx = xt.matmul(&xb)?;
    if lambda > 0.0 {
        xtx.add_diagonal(lambda);
        // Undo shrinkage on the bias term (last diagonal entry).
        let last = xtx.rows() - 1;
        let v = xtx.get(last, last);
        xtx.set(last, last, v - lambda);
    }
    let xty = xt.matvec(y)?;
    xtx.solve(&xty)
}

fn predict_with(weights: &[f64], row: &[f64]) -> f64 {
    debug_assert_eq!(
        weights.len(),
        row.len() + 1,
        "weights include the bias term"
    );
    let mut acc = weights[row.len()];
    for (w, v) in weights.iter().zip(row) {
        acc += w * v;
    }
    acc
}

/// Ordinary least squares via the normal equations.
///
/// # Examples
///
/// ```
/// use optum_ml::{LinearRegression, Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
/// let y = [1.0, 3.0, 5.0]; // y = 2x + 1
/// let mut lr = LinearRegression::new();
/// lr.fit(&x, &y).unwrap();
/// assert!((lr.predict_row(&[3.0]) - 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearRegression {
    weights: Option<Vec<f64>>,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> LinearRegression {
        LinearRegression { weights: None }
    }

    /// The learned coefficients `[w_1, …, w_d, bias]`, if fitted.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.weights = Some(solve_normal_equations(x, y, 0.0)?);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_with(w, row)
    }
}

/// Ridge regression: OLS with L2 shrinkage `lambda` on the non-bias
/// coefficients. Regularization also makes collinear feature sets
/// solvable.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeRegression {
    lambda: f64,
    weights: Option<Vec<f64>>,
}

impl RidgeRegression {
    /// Creates an unfitted model; `lambda` must be non-negative.
    pub fn new(lambda: f64) -> Result<RidgeRegression> {
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(Error::InvalidConfig("lambda must be >= 0".into()));
        }
        Ok(RidgeRegression {
            lambda,
            weights: None,
        })
    }

    /// The learned coefficients `[w_1, …, w_d, bias]`, if fitted.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Regressor for RidgeRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        self.weights = Some(solve_normal_equations(x, y, self.lambda)?);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let w = self.weights.as_ref().expect("fit before predict");
        predict_with(w, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ols_recovers_exact_line() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [1.0, 3.5, 6.0, 8.5]; // y = 2.5x + 1.
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        let w = lr.weights().unwrap();
        assert!((w[0] - 2.5).abs() < 1e-9);
        assert!((w[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ols_multivariate() {
        // y = 3a - 2b + 0.5, on a grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                rows.push(vec![a as f64, b as f64]);
                y.push(3.0 * a as f64 - 2.0 * b as f64 + 0.5);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut lr = LinearRegression::new();
        lr.fit(&x, &y).unwrap();
        assert!((lr.predict_row(&[10.0, 10.0]) - 10.5).abs() < 1e-7);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y).unwrap();
        let mut ridge = RidgeRegression::new(10.0).unwrap();
        ridge.fit(&x, &y).unwrap();
        let w_ols = ols.weights().unwrap()[0];
        let w_ridge = ridge.weights().unwrap()[0];
        assert!(w_ridge.abs() < w_ols.abs());
        assert!(w_ridge > 0.0);
    }

    #[test]
    fn ridge_solves_collinear_features() {
        // Duplicate columns are singular for OLS but fine for ridge.
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..6).map(|i| 2.0 * i as f64).collect();
        let mut ols = LinearRegression::new();
        assert!(ols.fit(&x, &y).is_err());
        let mut ridge = RidgeRegression::new(0.1).unwrap();
        ridge.fit(&x, &y).unwrap();
        // Weight mass is split across the duplicated columns.
        let w = ridge.weights().unwrap();
        assert!((w[0] - w[1]).abs() < 1e-9);
    }

    #[test]
    fn ridge_validates_lambda() {
        assert!(RidgeRegression::new(-1.0).is_err());
        assert!(RidgeRegression::new(f64::NAN).is_err());
    }

    #[test]
    fn fit_validates_lengths() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let mut lr = LinearRegression::new();
        assert!(lr.fit(&x, &[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn ols_residuals_orthogonal_to_features(
            points in proptest::collection::vec((-10f64..10.0, -10f64..10.0), 5..40)
        ) {
            let rows: Vec<Vec<f64>> = points.iter().map(|p| vec![p.0]).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            let x = Matrix::from_rows(&rows).unwrap();
            let mut lr = LinearRegression::new();
            // Skip degenerate all-equal-x draws where OLS is singular.
            if lr.fit(&x, &y).is_ok() {
                let preds = lr.predict(&x);
                let dot: f64 = preds
                    .iter()
                    .zip(&y)
                    .zip(&points)
                    .map(|((p, t), pt)| (t - p) * pt.0)
                    .sum();
                prop_assert!(dot.abs() < 1e-5);
            }
        }
    }
}
