//! CART regression tree with variance-reduction splits.
//!
//! The building block of the Random Forest the paper's Interference
//! Profiler adopts (§4.2.1). Supports per-split feature subsampling so
//! the forest can decorrelate its trees.
//!
//! # Layout
//!
//! Fitting still uses the natural recursive builder ([`BoxedTree`], a
//! pointer-chasing `enum` of boxed nodes), but the fitted tree is
//! *lowered* into a flattened struct-of-arrays layout: contiguous
//! `feature`/`threshold`/`left`/`right` arrays for the internal nodes
//! plus a `leaf_value` array, with leaves marked by a sentinel bit in
//! the child index. Prediction then walks a handful of dense arrays
//! that stay resident in L1 instead of chasing heap pointers, which is
//! what makes the batched forest predictions cheap. The lowering is a
//! pure structural copy in deterministic preorder, so predictions are
//! bit-identical to walking the boxed builder's output.

use optum_types::{Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::linalg::Matrix;
use crate::Regressor;

/// Tuning knobs for a regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` means all features.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// High bit of a child index: set when the index refers into
/// `leaf_value` rather than the internal-node arrays.
const LEAF_BIT: u32 = 1 << 31;
/// Root sentinel of an unfitted tree.
const UNFITTED: u32 = u32::MAX;

/// A CART regression tree.
///
/// # Examples
///
/// ```
/// use optum_ml::{DecisionTree, Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
/// let y = [0.0, 0.0, 5.0, 5.0];
/// let mut tree = DecisionTree::default_params(0);
/// tree.fit(&x, &y).unwrap();
/// assert_eq!(tree.predict_row(&[0.5]), 0.0);
/// assert_eq!(tree.predict_row(&[10.5]), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    params: TreeParams,
    seed: u64,
    n_features: usize,
    /// Encoded root: an internal-node index, a `LEAF_BIT`-tagged leaf
    /// index, or [`UNFITTED`].
    root: u32,
    /// Split feature per internal node.
    feature: Vec<u16>,
    /// Split threshold per internal node.
    threshold: Vec<f64>,
    /// Left child per internal node (`LEAF_BIT`-tagged when a leaf).
    left: Vec<u32>,
    /// Right child per internal node (`LEAF_BIT`-tagged when a leaf).
    right: Vec<u32>,
    /// Leaf predictions.
    leaf_value: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(params: TreeParams, seed: u64) -> Result<DecisionTree> {
        if params.max_depth == 0 || params.min_samples_leaf == 0 {
            return Err(Error::InvalidConfig(
                "max_depth and min_samples_leaf must be > 0".into(),
            ));
        }
        if params.max_features == Some(0) {
            return Err(Error::InvalidConfig(
                "max_features must be > 0 when set".into(),
            ));
        }
        Ok(DecisionTree {
            params,
            seed,
            n_features: 0,
            root: UNFITTED,
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_value: Vec::new(),
        })
    }

    /// Creates a tree with [`TreeParams::default`].
    pub fn default_params(seed: u64) -> DecisionTree {
        DecisionTree::new(TreeParams::default(), seed).expect("defaults are valid")
    }

    /// Number of leaves in the fitted tree (0 when unfitted).
    pub fn leaf_count(&self) -> usize {
        self.leaf_value.len()
    }

    /// Number of internal (split) nodes in the fitted tree.
    pub fn split_count(&self) -> usize {
        self.feature.len()
    }

    /// Lowers a boxed node into the flat arrays in preorder, returning
    /// its encoded index.
    fn lower(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf { value } => {
                let j = self.leaf_value.len() as u32;
                self.leaf_value.push(*value);
                LEAF_BIT | j
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let i = self.feature.len();
                self.feature.push(*feature as u16);
                self.threshold.push(*threshold);
                self.left.push(UNFITTED);
                self.right.push(UNFITTED);
                let l = self.lower(left);
                let r = self.lower(right);
                self.left[i] = l;
                self.right[i] = r;
                i as u32
            }
        }
    }

    fn install(&mut self, root: Node, n_features: usize) {
        self.n_features = n_features;
        self.feature.clear();
        self.threshold.clear();
        self.left.clear();
        self.right.clear();
        self.leaf_value.clear();
        self.root = self.lower(&root);
    }

    fn build(
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Node {
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            return Node::Leaf { value: mean };
        }
        let sse_parent: f64 = indices.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        if sse_parent < 1e-12 {
            return Node::Leaf { value: mean };
        }

        // Candidate feature subset (forest mode) or all features.
        let d = x.cols();
        let mut feats: Vec<usize> = (0..d).collect();
        if let Some(k) = params.max_features {
            feats.shuffle(rng);
            feats.truncate(k.min(d));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut sortable: Vec<(f64, f64)> = Vec::with_capacity(indices.len());
        for &f in &feats {
            sortable.clear();
            sortable.extend(indices.iter().map(|&i| (x.get(i, f), y[i])));
            sortable.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            // Prefix sums let each candidate threshold be scored in O(1).
            let n = sortable.len();
            let total_sum: f64 = sortable.iter().map(|p| p.1).sum();
            let total_sq: f64 = sortable.iter().map(|p| p.1 * p.1).sum();
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for i in 0..n - 1 {
                left_sum += sortable[i].1;
                left_sq += sortable[i].1 * sortable[i].1;
                // Can't split between equal feature values.
                if sortable[i].0 == sortable[i + 1].0 {
                    continue;
                }
                let nl = (i + 1) as f64;
                let nr = (n - i - 1) as f64;
                if (i + 1) < params.min_samples_leaf || (n - i - 1) < params.min_samples_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    let threshold = (sortable[i].0 + sortable[i + 1].0) / 2.0;
                    best = Some((f, threshold, sse));
                }
            }
        }

        let Some((feature, threshold, sse)) = best else {
            return Node::Leaf { value: mean };
        };
        if sse >= sse_parent - 1e-12 {
            return Node::Leaf { value: mean };
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, feature) <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::build(x, y, &left_idx, depth + 1, params, rng)),
            right: Box::new(Self::build(x, y, &right_idx, depth + 1, params, rng)),
        }
    }
}

impl DecisionTree {
    /// Fits on a sample view: conceptual training row `j` is
    /// `x.row(indices[j])` with target `y[indices[j]]`. Duplicate
    /// indices are allowed (bootstrap resampling). Produces a tree
    /// bit-identical to copying the sampled rows into a fresh matrix
    /// and calling [`Regressor::fit`], without materializing the copy:
    /// split scoring walks the sample in `indices` order, so every
    /// floating-point accumulation sees the same values in the same
    /// order.
    pub fn fit_sample(&mut self, x: &Matrix, y: &[f64], indices: &[usize]) -> Result<()> {
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        if indices.is_empty() {
            return Err(Error::InvalidData("empty sample in fit_sample".into()));
        }
        if indices.iter().any(|&i| i >= x.rows()) {
            return Err(Error::InvalidData("sample index out of bounds".into()));
        }
        if x.cols() > u16::MAX as usize {
            return Err(Error::InvalidData(
                "flattened trees support at most 65535 features".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let root = Self::build(x, y, indices, 0, &self.params, &mut rng);
        self.install(root, x.cols());
        Ok(())
    }

    /// Accumulates this tree's prediction for every row of `x` into
    /// `out` (`out[r] += tree(x.row(r))`).
    ///
    /// This is the batched kernel of `RandomForest::predict_matrix`:
    /// all rows walk one tree while its (small, contiguous) node
    /// arrays stay hot in cache, instead of every row re-touching
    /// every tree. Addition order per row is exactly "trees in forest
    /// order", so forest sums stay bit-identical to the per-row loop.
    pub fn predict_add(&self, x: &Matrix, out: &mut [f64]) {
        assert_eq!(x.rows(), out.len(), "output length must match rows");
        for (r, acc) in out.iter_mut().enumerate() {
            *acc += self.predict_row(x.row(r));
        }
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        let indices: Vec<usize> = (0..x.rows()).collect();
        self.fit_sample(x, y, &indices)
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.root != UNFITTED, "fit before predict");
        let mut idx = self.root;
        while idx & LEAF_BIT == 0 {
            let i = idx as usize;
            idx = if row[self.feature[i] as usize] <= self.threshold[i] {
                self.left[i]
            } else {
                self.right[i]
            };
        }
        self.leaf_value[(idx & !LEAF_BIT) as usize]
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.predict_add(x, &mut out);
        out
    }
}

/// The recursive boxed builder exposed as a reference implementation.
///
/// Fits the exact same tree as [`DecisionTree`] (they share the
/// builder) but *keeps* the pointer-chasing boxed nodes and predicts
/// by walking them. Exists so tests and benches can check the
/// flattened layout bit-for-bit against the original representation;
/// production code should always use [`DecisionTree`].
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq)]
pub struct BoxedTree {
    root: Node,
}

impl BoxedTree {
    /// Fits a boxed reference tree (same builder, no lowering).
    pub fn fit(params: TreeParams, seed: u64, x: &Matrix, y: &[f64]) -> Result<BoxedTree> {
        // Reuse DecisionTree's validation.
        DecisionTree::new(params, seed)?;
        if x.rows() != y.len() {
            return Err(Error::InvalidData("feature/target length mismatch".into()));
        }
        if x.rows() == 0 {
            return Err(Error::InvalidData("empty training set".into()));
        }
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(BoxedTree {
            root: DecisionTree::build(x, y, &indices, 0, &params, &mut rng),
        })
    }

    /// Predicts one row by walking the boxed nodes.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validates_params() {
        let bad = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        assert!(DecisionTree::new(bad, 0).is_err());
        let bad2 = TreeParams {
            max_features: Some(0),
            ..TreeParams::default()
        };
        assert!(DecisionTree::new(bad2, 0).is_err());
    }

    #[test]
    fn pure_targets_make_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mut t = DecisionTree::default_params(0);
        t.fit(&x, &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.split_count(), 0);
        assert_eq!(t.predict_row(&[9.9]), 4.0);
    }

    #[test]
    fn splits_step_function_exactly() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 9.0 }).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = DecisionTree::default_params(0);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict_row(&[10.0]), 1.0);
        assert_eq!(t.predict_row(&[40.0]), 9.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let params = TreeParams {
            max_depth: 2,
            ..TreeParams::default()
        };
        let mut t = DecisionTree::new(params, 0).unwrap();
        t.fit(&x, &y).unwrap();
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let params = TreeParams {
            min_samples_leaf: 5,
            ..TreeParams::default()
        };
        let mut t = DecisionTree::new(params, 0).unwrap();
        t.fit(&x, &y).unwrap();
        assert!(t.leaf_count() <= 2);
    }

    #[test]
    fn learns_two_feature_interaction() {
        // Target depends on feature 1 only; feature 0 is noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            rows.push(vec![(i * 7 % 13) as f64, (i % 2) as f64]);
            y.push(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = DecisionTree::default_params(0);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict_row(&[3.0, 0.0]), 0.0);
        assert_eq!(t.predict_row(&[3.0, 1.0]), 10.0);
    }

    #[test]
    fn fit_sample_matches_copied_bootstrap() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 4) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 4) as f64 * 2.5).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        // Bootstrap-style sample with duplicates, arbitrary order.
        let indices: Vec<usize> = (0..40)
            .map(|i| (i * 17 + 5) % 40)
            .chain([3, 3, 7])
            .collect();
        let copied_rows: Vec<Vec<f64>> = indices.iter().map(|&i| rows[i].clone()).collect();
        let copied_y: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
        let bx = Matrix::from_rows(&copied_rows).unwrap();
        let params = TreeParams {
            max_features: Some(1),
            ..TreeParams::default()
        };
        let mut view = DecisionTree::new(params, 9).unwrap();
        view.fit_sample(&x, &y, &indices).unwrap();
        let mut copied = DecisionTree::new(params, 9).unwrap();
        copied.fit(&bx, &copied_y).unwrap();
        assert_eq!(view, copied);
    }

    #[test]
    fn fit_sample_rejects_bad_input() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let y = [1.0, 2.0];
        let mut t = DecisionTree::default_params(0);
        assert!(t.fit_sample(&x, &y, &[]).is_err());
        assert!(t.fit_sample(&x, &y, &[2]).is_err());
    }

    #[test]
    fn refit_replaces_previous_tree() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y1: Vec<f64> = (0..50).map(|i| if i < 25 { 1.0 } else { 9.0 }).collect();
        let y2 = vec![3.5; 50];
        let mut t = DecisionTree::default_params(0);
        t.fit(&x, &y1).unwrap();
        assert!(t.leaf_count() > 1);
        t.fit(&x, &y2).unwrap();
        assert_eq!(t.leaf_count(), 1, "refit must clear the old arrays");
        assert_eq!(t.predict_row(&[0.0]), 3.5);
    }

    #[test]
    fn flat_matches_boxed_reference() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i * 13 % 17) as f64, (i % 5) as f64, i as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let params = TreeParams {
            max_depth: 6,
            min_samples_leaf: 2,
            max_features: Some(2),
        };
        let mut flat = DecisionTree::new(params, 42).unwrap();
        flat.fit(&x, &y).unwrap();
        let boxed = BoxedTree::fit(params, 42, &x, &y).unwrap();
        assert_eq!(flat.leaf_count(), boxed.leaf_count());
        for r in 0..x.rows() {
            let row = x.row(r);
            assert_eq!(flat.predict_row(row), boxed.predict_row(row));
        }
    }

    #[test]
    fn predict_add_accumulates_in_order() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i % 3) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = DecisionTree::default_params(0);
        t.fit(&x, &y).unwrap();
        let mut out = vec![1.0; x.rows()];
        t.predict_add(&x, &mut out);
        for (r, &v) in out.iter().enumerate() {
            assert_eq!(v, 1.0 + t.predict_row(x.row(r)));
        }
    }

    proptest! {
        #[test]
        fn predictions_within_target_range(
            points in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 4..60),
            probe in -200f64..200.0,
        ) {
            let rows: Vec<Vec<f64>> = points.iter().map(|p| vec![p.0]).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            let x = Matrix::from_rows(&rows).unwrap();
            let mut t = DecisionTree::default_params(1);
            t.fit(&x, &y).unwrap();
            let pred = t.predict_row(&[probe]);
            let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        }
    }
}
