//! Facade crate for the Optum unified resource management platform.
//!
//! Re-exports the workspace's public surface under one roof so that
//! downstream users can depend on a single crate:
//!
//! ```
//! use optum_platform::prelude::*;
//!
//! let cluster = ClusterConfig::homogeneous(10);
//! assert_eq!(cluster.node_count, 10);
//! ```

pub use optum_chaos as chaos;
pub use optum_core as optum;
pub use optum_experiments as experiments;
pub use optum_ml as ml;
pub use optum_parallel as parallel;
pub use optum_predictors as predictors;
pub use optum_sched as sched;
pub use optum_serve as serve;
pub use optum_shard as shard;
pub use optum_sim as sim;
pub use optum_stats as stats;
pub use optum_trace as tracegen;
pub use optum_types as types;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use optum_types::{
        AppId, ClusterConfig, NodeId, PodId, PodSpec, Resources, SloClass, Tick,
    };
}
