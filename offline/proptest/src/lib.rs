//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro
//! over `arg in strategy` parameters, range strategies, tuple
//! strategies, `collection::vec`, `any::<T>()`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the plain assertion message.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases generated per property test.
pub const CASES: usize = 64;

/// Deterministic RNG for one named property test.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident : $i:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// `any::<T>()` strategy: the full range of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Draws from `T`'s full value range.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// A length specification: fixed or ranged.
    pub trait IntoLen {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl IntoLen for usize {
        fn pick(&self, _rng: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn pick(&self, rng: &mut rand::rngs::StdRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Vector strategy.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem`-generated values with a fixed or ranged length.
    pub fn vec<S: Strategy, L: IntoLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod option {
    use super::Strategy;

    /// Option strategy (see [`of`]).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Option` of `inner`'s values: `None` about a quarter of the
    /// time, mirroring upstream's default `None` weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: CASES as u32,
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Property-test harness macro (no shrinking offline).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cases = $crate::ProptestConfig::from($cfg).cases;
            let mut rng = $crate::test_rng(stringify!($name));
            for _ in 0..cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                $body
            }
        }
    )+};
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            xs in crate::collection::vec(-1e3f64..1e3, 0..50),
            pair in (0u64..10, -2f64..3.0),
            n in any::<u64>(),
        ) {
            prop_assert!(xs.len() < 50);
            prop_assert!(xs.iter().all(|x| (-1e3..1e3).contains(x)));
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(n, n);
        }
    }
}
