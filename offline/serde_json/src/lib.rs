//! Offline stand-in for `serde_json`. Serialization is stubbed: every
//! call returns an error explaining the offline build. The functions
//! are unbounded generics so no `Serialize`/`Deserialize` impls are
//! needed anywhere in the workspace. Workload-archiving round-trip
//! tests fail under the offline patch by design (see
//! offline/README.md).

use std::fmt;

/// The error every stubbed call returns.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

const STUBBED: Error =
    Error("serde_json is stubbed in the offline build; JSON archiving is unavailable");

/// Always fails offline.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(STUBBED)
}

/// Always fails offline.
pub fn to_writer<W: std::io::Write, T: ?Sized>(_writer: W, _value: &T) -> Result<(), Error> {
    Err(STUBBED)
}

/// Always fails offline.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(STUBBED)
}

/// Always fails offline.
pub fn from_reader<R: std::io::Read, T>(_reader: R) -> Result<T, Error> {
    Err(STUBBED)
}
