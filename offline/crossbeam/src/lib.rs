//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope`, covering the `crossbeam::scope` API this
//! workspace uses. Panics in spawned threads surface through
//! `ScopedJoinHandle::join` exactly like the real crate.

use std::any::Any;

/// A scope for spawning borrowing threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (so it
    /// can spawn siblings), mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread, returning its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// this returns. Unjoined panicked children propagate their panic (the
/// real crate reports them through the outer `Result` instead, which
/// callers here immediately `expect`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| s.spawn(move |_| part.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
