//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex` /
//! `RwLock` API over `std::sync`. Poisoned locks (a panic while held)
//! propagate the panic rather than returning `Err`, matching
//! parking_lot's effective behavior for this workspace's usage.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
