//! Offline no-op stand-in for `serde_derive`.
//!
//! `#[derive(Serialize, Deserialize)]` expands to nothing: the
//! workspace only uses serde derives for optional workload archiving,
//! and the offline `serde_json` stand-in is unbounded-generic, so no
//! trait impls are required to compile. JSON round-trip tests fail
//! under the offline patch by design (see offline/README.md).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
