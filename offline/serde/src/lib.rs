//! Offline stand-in for `serde`: re-exports no-op `Serialize` /
//! `Deserialize` derive macros so `#[derive(...)]` positions compile.
//! No serialization actually happens offline (see offline/README.md).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
