//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{shuffle, partial_shuffle, choose}` — on top of a
//! xoshiro256++ generator with SplitMix64 seeding. Deterministic and
//! statistically sound, but **not** stream-compatible with the real
//! `rand`: numbers differ from a crates-io build. Only used when the
//! offline `[patch.crates-io]` config is active (see
//! `offline/README.md`).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler (blanket-bridged to ranges below, so
/// `Range<{float}>` infers its element type like with real rand).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing generator methods (blanket-implemented like real rand,
/// so `rng.gen()` auto-resolves through `&mut R` for unsized `R`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_xoshiro does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling / sampling helpers.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles the first `amount` elements into place, returning
        /// (shuffled prefix, untouched remainder).
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let k = amount.min(self.len());
            for i in 0..k {
                let j = (i..self.len()).sample_from(rng);
                self.swap(i, j);
            }
            self.split_at_mut(k)
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..17);
            assert!(n < 17);
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let (head, _) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(head.len(), 10);
    }
}
