//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of criterion's statistical machinery it runs each
//! routine for a short, fixed budget and prints the mean wall-clock
//! time per iteration — enough to compare orders of magnitude, not a
//! substitute for real criterion runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _parent: self,
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (offline: scales the budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark routine with an explicit input.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times repeated calls of `routine` within a small fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, untimed.
        black_box(routine());
        let budget = Duration::from_millis(200);
        let max_iters = self.sample_size as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < max_iters && (iters < 3 || start.elapsed() < budget) {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label}: no iterations recorded");
        } else {
            let per = self.elapsed / self.iters as u32;
            println!("{label}: {per:?}/iter over {} iters (offline stub)", self.iters);
        }
    }
}

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
