//! End-to-end integration: the full pipeline from workload generation
//! through profiling, training and scheduling, across crates.

use optum_platform::optum::{OptumConfig, OptumScheduler, ProfilerConfig, TracingCoordinator};
use optum_platform::sched::{AlibabaLike, BorgLike, Medea, NSigmaSched, RcLike};
use optum_platform::sim::{run, SimConfig, SimResult};
use optum_platform::tracegen::{generate, WorkloadConfig};
use optum_platform::types::{SloClass, Tick};

const HOSTS: usize = 40;

fn workload() -> optum_platform::tracegen::Workload {
    generate(&WorkloadConfig::sized(HOSTS, 2, 77)).expect("generation succeeds")
}

fn active_util(r: &SimResult) -> f64 {
    r.cluster_series
        .iter()
        .map(|s| s.mean_cpu_util_active)
        .sum::<f64>()
        / r.cluster_series.len().max(1) as f64
}

#[test]
fn full_optum_pipeline_improves_on_reference() {
    let w = workload();
    let training = TracingCoordinator::new(HOSTS, 2)
        .collect(&w)
        .expect("profiling");
    assert!(!training.psi.is_empty());
    assert!(training.ero.observed_pairs() > 10);

    let optum =
        OptumScheduler::from_training(OptumConfig::default(), &training, ProfilerConfig::default())
            .expect("training succeeds");
    let reference = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).expect("reference run");
    let result = run(&w, optum, SimConfig::new(HOSTS)).expect("optum run");

    // Affinity subsets at this tiny scale are ~5 hosts per LS app;
    // a small unplaceable residue is expected.
    assert!(
        result.placement_rate() > 0.96,
        "optum placed {}",
        result.placement_rate()
    );
    // The headline: higher active-host utilization than the
    // production-like reference, with no capacity violations.
    let (base, opt) = (active_util(&reference), active_util(&result));
    assert!(
        opt > base + 0.02,
        "expected consolidation: optum {opt:.3} vs reference {base:.3}"
    );
    assert!(result.violations.rate() < 0.01);
}

#[test]
fn all_baselines_complete_and_place_everything() {
    let w = workload();
    let schedulers: Vec<Box<dyn optum_platform::sim::Scheduler>> = vec![
        Box::new(AlibabaLike::default()),
        Box::new(RcLike::default()),
        Box::new(NSigmaSched::default()),
        Box::new(BorgLike::default()),
        Box::new(Medea::default()),
    ];
    for sched in schedulers {
        let name = sched.name();
        let r = run(&w, sched, SimConfig::new(HOSTS)).expect("run succeeds");
        assert!(
            r.placement_rate() > 0.97,
            "{name} placed only {:.3}",
            r.placement_rate()
        );
        assert_eq!(r.outcomes.len(), w.pods.len());
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let w = workload();
    let r1 = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).unwrap();
    let r2 = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).unwrap();
    assert_eq!(r1.outcomes, r2.outcomes);
    assert_eq!(r1.violations, r2.violations);
    let c1: Vec<_> = r1.cluster_series.iter().map(|s| s.mean_cpu_util).collect();
    let c2: Vec<_> = r2.cluster_series.iter().map(|s| s.mean_cpu_util).collect();
    assert_eq!(c1, c2);
}

#[test]
fn different_schedulers_same_workload_same_pod_set() {
    // Physics is placement-independent: every scheduler sees the same
    // pods with the same arrivals and nominal durations.
    let w = workload();
    let a = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).unwrap();
    let b = run(&w, BorgLike::default(), SimConfig::new(HOSTS)).unwrap();
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.arrival, y.arrival);
        assert_eq!(x.nominal_duration, y.nominal_duration);
        assert_eq!(x.slo, y.slo);
    }
}

#[test]
fn outcome_invariants_hold() {
    let w = workload();
    let r = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).unwrap();
    let window = Tick(w.config.window_ticks());
    for o in &r.outcomes {
        if let Some(placed) = o.placed_at {
            assert!(placed >= o.arrival, "placed before arrival");
            assert!(placed < window);
            assert_eq!(o.wait_ticks, placed.0 - o.arrival.0);
        }
        if let Some(done) = o.completed_at {
            let placed = o.placed_at.expect("completed implies placed");
            assert!(done >= placed);
            let actual = o.actual_duration.expect("completed implies duration");
            assert_eq!(actual, done.0 - placed.0 + 1);
            if o.slo == SloClass::Be {
                // Contention only slows batch work down.
                assert!(
                    actual + 1 >= o.nominal_duration,
                    "BE pod finished impossibly fast: {actual} < {}",
                    o.nominal_duration
                );
            }
        }
        assert!((0.0..=1.0).contains(&o.worst_psi));
        assert!(o.max_pod_cpu_util >= 0.0);
        assert!(
            o.max_host_cpu_util <= 1.0 + 1e-9,
            "host util is capacity-clamped"
        );
    }
}

#[test]
fn lsr_pods_wait_less_than_be() {
    let w = workload();
    let r = run(&w, AlibabaLike::default(), SimConfig::new(HOSTS)).unwrap();
    let mean_wait = |slo: SloClass| {
        let waits: Vec<f64> = r.outcomes_of(slo).map(|o| o.wait_ticks as f64).collect();
        waits.iter().sum::<f64>() / waits.len().max(1) as f64
    };
    // LSR pods preempt BE pods, so they never wait longer on average.
    assert!(
        mean_wait(SloClass::Lsr) <= mean_wait(SloClass::Be) + 1.0,
        "LSR {} vs BE {}",
        mean_wait(SloClass::Lsr),
        mean_wait(SloClass::Be)
    );
}

#[test]
fn triple_ero_collection_tightens_predictions() {
    use optum_platform::predictors::{
        NodeObservation, OptumPredictor, OptumPredictorTriple, PodInfo, UsagePredictor,
    };
    use optum_platform::sim::SimConfig;

    let w = workload();
    let mut cfg = SimConfig::new(HOSTS);
    cfg.collect_training = true;
    cfg.collect_triple_ero = true;
    let r = run(&w, AlibabaLike::default(), cfg).expect("profiling run");
    let training = r.training.expect("training collected");
    let triples = training.triples.as_ref().expect("triples collected");
    assert!(
        triples.observed() > 10,
        "only {} triples",
        triples.observed()
    );

    // On a synthetic host drawn from real co-located apps, the
    // triple-wise composition is never looser than pairwise.
    let pods: Vec<PodInfo> = w
        .pods
        .iter()
        .take(12)
        .map(|p| PodInfo {
            app: p.spec.app,
            request: p.spec.request,
            limit: p.spec.limit,
        })
        .collect();
    let obs = NodeObservation {
        capacity: optum_platform::types::Resources::UNIT,
        pods: &pods,
        cpu_history: &[],
        mem_history: &[],
    };
    let pairwise = OptumPredictor.predict(&obs, &training);
    let triple = OptumPredictorTriple.predict(&obs, &training);
    assert!(
        triple.cpu <= pairwise.cpu + 1e-9,
        "triple {:.4} vs pairwise {:.4}",
        triple.cpu,
        pairwise.cpu
    );
    assert!(triple.cpu > 0.0);
}
