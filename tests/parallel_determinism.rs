//! The parallel execution layer's determinism contract: every
//! parallelized path — forest training, profiler training, experiment
//! fan-out — produces bit-identical results for every thread count.

use optum_platform::experiments::{churn, endtoend, ExpConfig, Runner};
use optum_platform::ml::{Matrix, RandomForest, Regressor};
use optum_platform::optum::{InterferenceProfiler, ProfilerConfig, TracingCoordinator};
use optum_platform::sched::{AlibabaLike, BorgLike, Medea};
use optum_platform::sim::Scheduler;
use optum_platform::tracegen::{generate, WorkloadConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        hosts: 20,
        days: 1,
        seed: 3,
        shards: None,
    }
}

#[test]
fn forest_training_is_thread_count_invariant() {
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|i| vec![i as f64, (i % 5) as f64, ((i * 7) % 11) as f64])
        .collect();
    let y: Vec<f64> = (0..80).map(|i| ((i % 5) * ((i * 7) % 11)) as f64).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let mut serial = RandomForest::default_params(13);
    serial.fit(&x, &y).unwrap();
    let serial_preds = serial.predict_matrix(&x);
    for threads in [2, 5, 16] {
        let mut par = RandomForest::default_params(13).with_threads(threads);
        par.fit(&x, &y).unwrap();
        let preds = par.predict_matrix(&x);
        for (a, b) in serial_preds.iter().zip(&preds) {
            assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
        }
    }
}

#[test]
fn profiler_training_is_thread_count_invariant() {
    let w = generate(&WorkloadConfig::sized(20, 1, 9)).unwrap();
    let training = TracingCoordinator::new(20, 1).collect(&w).unwrap();
    let mapes = |threads: usize| {
        let p = InterferenceProfiler::train(
            &training,
            ProfilerConfig {
                threads,
                ..ProfilerConfig::default()
            },
        )
        .unwrap();
        let mut ls = p.ls_mapes();
        let mut be = p.be_mapes();
        ls.sort_by_key(|(a, _)| a.0);
        be.sort_by_key(|(a, _)| a.0);
        (ls, be)
    };
    let serial = mapes(1);
    assert_eq!(serial, mapes(4));
}

#[test]
fn runner_fan_out_matches_serial_evals() {
    let runner = Runner::new(tiny()).unwrap();
    let roster = || -> Vec<Box<dyn Scheduler + Send>> {
        vec![
            Box::new(AlibabaLike::default()),
            Box::new(BorgLike::default()),
            Box::new(Medea::default()),
        ]
    };
    let serial: Vec<_> = roster()
        .into_iter()
        .map(|s| runner.run_eval(s).unwrap())
        .collect();
    for threads in [2, 3] {
        let mut parallel_runner = Runner::new(tiny()).unwrap();
        parallel_runner.set_threads(threads);
        let parallel = parallel_runner.run_evals(roster()).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.scheduler, b.scheduler, "threads={threads}");
            assert_eq!(a.outcomes, b.outcomes, "threads={threads}");
            assert_eq!(a.violations, b.violations, "threads={threads}");
        }
    }
}

#[test]
fn figure_tsv_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        let mut runner = Runner::new(tiny()).unwrap();
        runner.set_threads(threads);
        endtoend::fig19(&mut runner).unwrap().render()
    };
    assert_eq!(render(1), render(3));
}

#[test]
fn churn_experiment_is_byte_identical_across_thread_counts() {
    // A reduced grid (one healthy arm, one stormy arm) keeps the test
    // cheap; the fan-out still interleaves chaos and healthy runs
    // across workers, which is exactly what must not leak into
    // results.
    let grid = [f64::INFINITY, 0.5];
    let render = |threads: usize| {
        let mut runner = Runner::new(tiny()).unwrap();
        runner.set_threads(threads);
        churn::churn_grid(&mut runner, &grid).unwrap().render()
    };
    let serial = render(1);
    assert!(serial.contains("0.50"), "stormy arm missing from output");
    assert_eq!(serial, render(3));
}
