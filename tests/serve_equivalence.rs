//! Batch/serve equivalence: the incremental engine mode behind
//! optumd (`Simulator::step` fed tick by tick) must be *bit-identical*
//! to the batch entry point (`optum_sim::run`) on the fig19 fast
//! configuration — the same arm the golden suite pins byte-for-byte,
//! so this chains the serve path to `tests/golden/fig19_fast_head.tsv`.

use optum_platform::experiments::{endtoend, ExpConfig, Runner};
use optum_platform::optum::OptumConfig;
use optum_platform::sim::Simulator;
use optum_platform::tracegen::arrival_schedule;
use optum_platform::types::{PodId, Tick};

#[test]
fn step_driven_session_is_bit_identical_to_fig19_optum_arm() {
    let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    runner.set_threads(1);
    // The batch arm: fig19's trained-Optum evaluation, cached on the
    // runner in roster order (golden-pinned).
    endtoend::fig19(&mut runner).expect("fig19");

    // The serve arm: an identically-trained scheduler driven through
    // the incremental API with per-tick arrival inboxes — exactly what
    // optumd does with a client submitting the trace on time.
    let optum = endtoend::trained_optum(&mut runner, OptumConfig::default()).expect("trained");
    let mut cfg = runner.sim_config();
    // Must match Runner::run_eval's lean recording settings.
    cfg.pods_per_app_sampled = 0;
    cfg.series_stride = 10;
    let mut sim = Simulator::new(&runner.workload, optum, cfg).expect("simulator");

    let schedule = arrival_schedule(&runner.workload);
    let end = sim.end_tick().0;
    let mut cursor = 0;
    let empty: Vec<PodId> = Vec::new();
    for t in 0..end {
        let inbox = if cursor < schedule.len() && schedule[cursor].0 == Tick(t) {
            cursor += 1;
            &schedule[cursor - 1].1
        } else {
            &empty
        };
        sim.step(Tick(t), inbox).expect("step");
    }
    assert_eq!(cursor, schedule.len(), "every arrival tick submitted");
    let incremental = sim.finish().expect("finish");

    let batch = &runner.roster_cache[0];
    assert_eq!(batch.scheduler, "Optum", "fig19 roster order changed");
    assert_eq!(incremental.scheduler, batch.scheduler);
    assert_eq!(
        incremental.outcomes, batch.outcomes,
        "incremental pod outcomes diverged from the batch run"
    );
    assert_eq!(
        incremental.cluster_series, batch.cluster_series,
        "incremental cluster series diverged from the batch run"
    );
    assert_eq!(
        incremental.violations, batch.violations,
        "incremental violation accounting diverged from the batch run"
    );
    assert_eq!(
        incremental.digest(),
        batch.digest(),
        "incremental end-state digest diverged from the batch run"
    );
}
