//! Integration tests asserting the characterization *shapes* the
//! synthetic workload must reproduce (the qualitative claims of §3).

use optum_platform::sched::AlibabaLike;
use optum_platform::sim::{run, SimConfig};
use optum_platform::stats::{mean, pearson};
use optum_platform::tracegen::{generate, AppKind, WorkloadConfig};
use optum_platform::types::{SloClass, Tick, TICKS_PER_DAY};

fn workload() -> optum_platform::tracegen::Workload {
    generate(&WorkloadConfig::sized(50, 2, 123)).expect("generation succeeds")
}

#[test]
fn implication_1_be_fills_ls_valleys() {
    // BE arrival rates peak where LS QPS troughs (anti-phase curves).
    let w = workload();
    let ls_peak_hours: Vec<f64> = w
        .apps
        .iter()
        .filter_map(|a| match &a.kind {
            AppKind::Ls(p) => Some((p.qps.phase + 6.0) % 24.0),
            _ => None,
        })
        .collect();
    let be_peak_hours: Vec<f64> = w
        .apps
        .iter()
        .filter_map(|a| match &a.kind {
            AppKind::Be(p) => Some((p.job_rate.phase + 6.0) % 24.0),
            _ => None,
        })
        .collect();
    let ls_mid = mean(&ls_peak_hours);
    let be_mid = mean(&be_peak_hours);
    let gap = (ls_mid - be_mid).abs();
    let wrapped = gap.min(24.0 - gap);
    assert!(
        wrapped > 8.0,
        "BE peaks ({be_mid:.1}h) must oppose LS peaks ({ls_mid:.1}h)"
    );
}

#[test]
fn implication_2_overcommitted_but_underutilized() {
    let w = workload();
    let mut cfg = SimConfig::new(50);
    cfg.snapshot_tick = Some(Tick(TICKS_PER_DAY + 120));
    let r = run(&w, AlibabaLike::default(), cfg).unwrap();
    // Some hosts over-commit CPU by requests…
    let overcommitted = r
        .node_snapshot
        .iter()
        .filter(|n| n.requested.cpu > n.capacity.cpu)
        .count();
    assert!(overcommitted > 0, "no host over-committed");
    // …while overall utilization stays low (< 50% mean).
    assert!(r.mean_cpu_utilization() < 0.5);
}

#[test]
fn implication_3_arrivals_are_heavy_tailed() {
    let w = workload();
    let mut per_min = std::collections::HashMap::new();
    for p in &w.pods {
        *per_min.entry(p.spec.arrival.minute()).or_insert(0u64) += 1;
    }
    let mut counts: Vec<u64> = per_min.values().copied().collect();
    counts.sort();
    let p50 = counts[counts.len() / 2];
    let max = counts[counts.len() - 1];
    assert!(
        max >= p50 * 8,
        "arrivals not heavy-tailed: p50 {p50}, max {max}"
    );
}

#[test]
fn implication_6_pods_within_app_are_consistent() {
    // Mean CPU usage across pods of one LS app varies far less than
    // across apps.
    let w = workload();
    let t = Tick(TICKS_PER_DAY / 2);
    let mut within = Vec::new();
    let mut app_means = Vec::new();
    for app in w
        .apps
        .iter()
        .filter(|a| matches!(a.kind, AppKind::Ls(_)))
        .take(10)
    {
        let pods: Vec<_> = w
            .pods
            .iter()
            .filter(|p| p.spec.app == app.id)
            .take(8)
            .collect();
        if pods.len() < 4 {
            continue;
        }
        let usages: Vec<f64> = pods.iter().map(|p| app.pod_cpu_usage(p, t)).collect();
        if let Some(cov) = optum_platform::stats::coefficient_of_variation(&usages) {
            within.push(cov);
        }
        app_means.push(mean(&usages));
    }
    let across = optum_platform::stats::coefficient_of_variation(&app_means).unwrap();
    let within_mean = mean(&within);
    assert!(
        within_mean < across,
        "within-app CoV {within_mean:.3} should undercut across-app {across:.3}"
    );
    assert!(
        within_mean < 0.5,
        "LS pods too inconsistent: {within_mean:.3}"
    );
}

#[test]
fn implication_7_psi_correlates_with_host_utilization() {
    let w = workload();
    let app = w
        .apps
        .iter()
        .find(|a| matches!(a.kind, AppKind::Ls(_)))
        .expect("workload has LS apps");
    let pod = w
        .pods
        .iter()
        .find(|p| p.spec.app == app.id)
        .expect("app has pods");
    let t = Tick(TICKS_PER_DAY / 3);
    let utils: Vec<f64> = (0..40).map(|i| 0.3 + 0.017 * i as f64).collect();
    let psis: Vec<f64> = utils
        .iter()
        .map(|&u| app.psi_instant(pod, 0.3, u, t))
        .collect();
    let corr = pearson(&utils, &psis).expect("variation present");
    assert!(
        corr > 0.6,
        "PSI vs host util correlation too weak: {corr:.3}"
    );
}

#[test]
fn be_memory_nearly_fully_used_ls_underused() {
    let w = workload();
    let t = Tick(TICKS_PER_DAY / 2);
    let mut be_ratios = Vec::new();
    let mut ls_ratios = Vec::new();
    for p in w.pods.iter().take(3000) {
        let app = w.app_of(p);
        let usage = app.pod_mem_usage(p, t);
        let ratio = usage / p.spec.request.mem;
        match p.spec.slo {
            SloClass::Be => be_ratios.push(ratio),
            SloClass::Ls => ls_ratios.push(ratio),
            _ => {}
        }
    }
    assert!(
        mean(&be_ratios) > 0.85,
        "BE mem ratio {:.2}",
        mean(&be_ratios)
    );
    assert!(
        mean(&ls_ratios) < 0.65,
        "LS mem ratio {:.2}",
        mean(&ls_ratios)
    );
}

#[test]
fn completion_time_inflates_with_host_contention() {
    let w = workload();
    let app = w
        .apps
        .iter()
        .find(|a| matches!(a.kind, AppKind::Be(_)))
        .expect("workload has BE apps");
    let idle = app.be_progress_rate(0.1, 0.1);
    let busy = app.be_progress_rate(0.95, 0.95);
    assert!(
        idle > busy,
        "contention must slow progress: {idle} vs {busy}"
    );
    assert!(busy > 0.2, "progress never stalls completely");
}
