//! Golden-figure regression suite: the first 20 lines of the fast-
//! scale `fig19`, `churn` and `degrade` figure TSV must match the
//! snapshots in `tests/golden/` byte for byte, at worker-thread
//! counts 1 and 4 — plus checkpoint/resume byte-identity and the
//! degrade sweep's fig19 anchor.
//!
//! This turns two standing claims into CI-enforced tests: the figure
//! pipeline is deterministic (PR 1/2 verified thread-count invariance
//! by hand), and the observability instrumentation (PR 3) is
//! observation-only — recording spans and counters must not perturb a
//! single output byte.
//!
//! When figure output changes intentionally, regenerate with
//!
//! ```sh
//! cargo run --release -p optum-experiments --example gen_golden
//! ```
//!
//! and justify the diff in the PR.

use optum_platform::experiments::output::head_lines;
use optum_platform::experiments::{churn, degrade, endtoend, ExpConfig, Runner};

const FIG19_GOLDEN: &str = include_str!("golden/fig19_fast_head.tsv");
const CHURN_GOLDEN: &str = include_str!("golden/churn_fast_head.tsv");
const DEGRADE_GOLDEN: &str = include_str!("golden/degrade_fast_head.tsv");

/// Must match `gen_golden.rs`.
const GOLDEN_LINES: usize = 20;
/// Must match `gen_golden.rs`: one healthy arm, one stormy arm.
const CHURN_GRID: [f64; 2] = [f64::INFINITY, 0.5];
/// Must match `gen_golden.rs`: the fig19 anchor arm plus one lossy
/// distributed arm (the outage panel always runs).
const DEGRADE_LOSSES: [f64; 2] = [0.0, 0.2];
const DEGRADE_SHARDS: [usize; 2] = [1, 4];

/// Worker-thread counts the goldens are asserted at. `set_threads`
/// takes precedence over `OPTUM_THREADS`, so the test controls the
/// fan-out without touching process-global env.
const THREAD_COUNTS: [usize; 2] = [1, 4];

#[test]
fn fig19_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = endtoend::fig19(&mut runner).expect("fig19").render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            FIG19_GOLDEN,
            "fig19 --fast drifted from tests/golden/fig19_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

#[test]
fn degrade_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = degrade::degrade_grid(&mut runner, &DEGRADE_LOSSES, &DEGRADE_SHARDS)
            .expect("degrade")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            DEGRADE_GOLDEN,
            "degrade drifted from tests/golden/degrade_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

/// The degrade sweep's loss=0, k=1 arm must report exactly the fig19
/// `Optum` evaluation arm: the distributed machinery with a reliable
/// channel and a single replica is the plain scheduler.
#[test]
fn degrade_loss_zero_anchor_matches_fig19_optum_arm() {
    let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    runner.set_threads(1);
    let rendered = degrade::degrade_grid(&mut runner, &[0.0], &[1])
        .expect("degrade")
        .render();
    endtoend::fig19(&mut runner).expect("fig19");
    let optum = &runner.roster_cache[0];
    assert_eq!(optum.scheduler, "Optum", "roster order changed");
    let row = rendered
        .lines()
        .find(|l| l.starts_with("0.0\t1\tOptum\t"))
        .expect("degrade output lacks the loss=0 k=1 arm");
    let rate = row.split('\t').nth(3).expect("placement_rate column");
    assert_eq!(
        rate,
        format!("{:.4}", optum.placement_rate()),
        "degrade anchor arm drifted from the fig19 Optum arm"
    );
}

/// A checkpointed fig19 run, killed and resumed from its last
/// snapshot, must render a byte-identical figure TSV — and both must
/// still match the golden head.
#[test]
fn fig19_resumed_from_checkpoint_is_byte_identical() {
    let snap =
        std::env::temp_dir().join(format!("optum-golden-resume-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap);

    let mut checkpointed = Runner::new(ExpConfig::fast()).expect("workload generation");
    checkpointed.set_threads(1);
    // Fast scale is 5760 ticks: snapshots land at 2000 and 4000, both
    // before the mid-window commitment snapshot at 4680, so the
    // resumed run must reconstruct it identically.
    checkpointed.set_checkpointing(2000, snap.clone());
    let uninterrupted = endtoend::fig19(&mut checkpointed).expect("fig19").render();
    assert_eq!(
        head_lines(&uninterrupted, GOLDEN_LINES),
        FIG19_GOLDEN,
        "checkpoint writing perturbed fig19 output"
    );
    assert!(snap.exists(), "no checkpoint was written");

    let mut resumed_runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    resumed_runner.set_threads(1);
    resumed_runner.set_resume(snap.clone());
    let resumed = endtoend::fig19(&mut resumed_runner)
        .expect("fig19")
        .render();
    let _ = std::fs::remove_file(&snap);
    assert_eq!(
        resumed, uninterrupted,
        "fig19 resumed from the tick-4000 checkpoint diverged from the uninterrupted run"
    );
}

#[test]
fn churn_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = churn::churn_grid(&mut runner, &CHURN_GRID)
            .expect("churn")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            CHURN_GOLDEN,
            "churn drifted from tests/golden/churn_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}
