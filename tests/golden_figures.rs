//! Golden-figure regression suite: the head of the fast-scale
//! `fig19`, `churn`, `degrade`, `overload`, `scale`, `serve` and
//! `disrupt` figure TSVs must match the snapshots in `tests/golden/`
//! byte for byte, at worker-thread counts 1 and 4 — plus checkpoint/resume
//! byte-identity and the degrade/overload sweeps' fig19 anchors.
//!
//! This turns two standing claims into CI-enforced tests: the figure
//! pipeline is deterministic (PR 1/2 verified thread-count invariance
//! by hand), and the observability instrumentation (PR 3) is
//! observation-only — recording spans and counters must not perturb a
//! single output byte.
//!
//! When figure output changes intentionally, regenerate with
//!
//! ```sh
//! cargo run --release -p optum-experiments --example gen_golden
//! ```
//!
//! and justify the diff in the PR.

use optum_platform::experiments::output::head_lines;
use optum_platform::experiments::{
    churn, degrade, disrupt, endtoend, overload, scalebench, serve, ExpConfig, Runner,
};
use optum_platform::types::SloClass;

const FIG19_GOLDEN: &str = include_str!("golden/fig19_fast_head.tsv");
const CHURN_GOLDEN: &str = include_str!("golden/churn_fast_head.tsv");
const DEGRADE_GOLDEN: &str = include_str!("golden/degrade_fast_head.tsv");
const OVERLOAD_GOLDEN: &str = include_str!("golden/overload_fast_head.tsv");
const SCALE_GOLDEN: &str = include_str!("golden/scale_fast_head.tsv");
const SERVE_GOLDEN: &str = include_str!("golden/serve_fast_head.tsv");
const DISRUPT_GOLDEN: &str = include_str!("golden/disrupt_fast_head.tsv");

/// Must match `gen_golden.rs`.
const GOLDEN_LINES: usize = 20;
/// Must match `gen_golden.rs`: the scale head covers the outcome and
/// per-class panels, excluding the measured performance panel.
const SCALE_GOLDEN_LINES: usize = 15;
/// Must match `gen_golden.rs`: the serve head covers the session
/// outcome and per-class latency/ledger panels, excluding the
/// measured performance panel.
const SERVE_GOLDEN_LINES: usize = 26;
/// Must match `gen_golden.rs`: the disrupt head covers the session
/// outcome and per-class panels, excluding the measured recovery
/// panel (retry counts and proxy fault tallies are wall-clock racy).
const DISRUPT_GOLDEN_LINES: usize = 40;
/// Must match `gen_golden.rs`: one healthy arm, one stormy arm.
const CHURN_GRID: [f64; 2] = [f64::INFINITY, 0.5];
/// Must match `gen_golden.rs`: the fig19 anchor arm plus one lossy
/// distributed arm (the outage panel always runs).
const DEGRADE_LOSSES: [f64; 2] = [0.0, 0.2];
const DEGRADE_SHARDS: [usize; 2] = [1, 4];
/// Must match `gen_golden.rs`: the fig19 anchor arm plus the fully
/// protected extreme (10× storm, tight cap + decision deadline).
const OVERLOAD_INTENSITIES: [f64; 2] = [1.0, 10.0];
const OVERLOAD_CAPS: [Option<usize>; 2] = [None, Some(1000)];

/// Worker-thread counts the goldens are asserted at. `set_threads`
/// takes precedence over `OPTUM_THREADS`, so the test controls the
/// fan-out without touching process-global env.
const THREAD_COUNTS: [usize; 2] = [1, 4];

#[test]
fn fig19_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = endtoend::fig19(&mut runner).expect("fig19").render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            FIG19_GOLDEN,
            "fig19 --fast drifted from tests/golden/fig19_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

#[test]
fn degrade_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = degrade::degrade_grid(&mut runner, &DEGRADE_LOSSES, &DEGRADE_SHARDS)
            .expect("degrade")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            DEGRADE_GOLDEN,
            "degrade drifted from tests/golden/degrade_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

/// The degrade sweep's loss=0, k=1 arm must report exactly the fig19
/// `Optum` evaluation arm: the distributed machinery with a reliable
/// channel and a single replica is the plain scheduler.
#[test]
fn degrade_loss_zero_anchor_matches_fig19_optum_arm() {
    let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    runner.set_threads(1);
    let rendered = degrade::degrade_grid(&mut runner, &[0.0], &[1])
        .expect("degrade")
        .render();
    endtoend::fig19(&mut runner).expect("fig19");
    let optum = &runner.roster_cache[0];
    assert_eq!(optum.scheduler, "Optum", "roster order changed");
    let row = rendered
        .lines()
        .find(|l| l.starts_with("0.0\t1\tOptum\t"))
        .expect("degrade output lacks the loss=0 k=1 arm");
    let rate = row.split('\t').nth(3).expect("placement_rate column");
    assert_eq!(
        rate,
        format!("{:.4}", optum.placement_rate()),
        "degrade anchor arm drifted from the fig19 Optum arm"
    );
}

/// A checkpointed fig19 run, killed and resumed from its last
/// snapshot, must render a byte-identical figure TSV — and both must
/// still match the golden head.
#[test]
fn fig19_resumed_from_checkpoint_is_byte_identical() {
    let snap =
        std::env::temp_dir().join(format!("optum-golden-resume-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap);

    let mut checkpointed = Runner::new(ExpConfig::fast()).expect("workload generation");
    checkpointed.set_threads(1);
    // Fast scale is 5760 ticks: snapshots land at 2000 and 4000, both
    // before the mid-window commitment snapshot at 4680, so the
    // resumed run must reconstruct it identically.
    checkpointed.set_checkpointing(2000, snap.clone());
    let uninterrupted = endtoend::fig19(&mut checkpointed).expect("fig19").render();
    assert_eq!(
        head_lines(&uninterrupted, GOLDEN_LINES),
        FIG19_GOLDEN,
        "checkpoint writing perturbed fig19 output"
    );
    assert!(snap.exists(), "no checkpoint was written");

    let mut resumed_runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    resumed_runner.set_threads(1);
    resumed_runner.set_resume(snap.clone());
    let resumed = endtoend::fig19(&mut resumed_runner)
        .expect("fig19")
        .render();
    let _ = std::fs::remove_file(&snap);
    assert_eq!(
        resumed, uninterrupted,
        "fig19 resumed from the tick-4000 checkpoint diverged from the uninterrupted run"
    );
}

#[test]
fn overload_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = overload::overload_grid(&mut runner, &OVERLOAD_INTENSITIES, &OVERLOAD_CAPS)
            .expect("overload")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            OVERLOAD_GOLDEN,
            "overload drifted from tests/golden/overload_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

/// The overload sweep's intensity=1, cap=∞ arm must reproduce the
/// fig19 `Optum` evaluation arm byte for byte: a unit-intensity storm
/// leaves the workload untouched and disabled protection leaves the
/// engine's hot paths untouched, so the overload subsystem costs
/// nothing when off.
#[test]
fn overload_calm_unprotected_arm_matches_fig19_optum_arm() {
    let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    // Fan-out is bit-identical at every thread count (the golden test
    // above asserts it), so use auto threads for wall time.
    runner.set_threads(0);
    let arms = overload::overload_results(&mut runner, &[1.0], &[None]).expect("overload results");
    endtoend::fig19(&mut runner).expect("fig19");
    let optum = &runner.roster_cache[0];
    assert_eq!(optum.scheduler, "Optum", "fig19 roster order changed");
    let arm = &arms[5].result;
    assert_eq!(arm.scheduler, "Optum", "overload roster order changed");
    assert_eq!(
        arm.outcomes, optum.outcomes,
        "overload anchor arm's pod outcomes drifted from the fig19 Optum arm"
    );
    assert_eq!(
        arm.cluster_series, optum.cluster_series,
        "overload anchor arm's cluster series drifted from the fig19 Optum arm"
    );
    assert_eq!(arm.overload.total_shed(), 0);
}

/// Under a 10× storm with the bounded queue, shedding must be
/// class-aware — best-effort absorbs denial first, the reserved tier
/// last — and the protection must keep the reserved tier's waiting
/// tail near its calm-weather value.
#[test]
fn overload_storm_sheds_in_class_order_and_protects_lsr_tail() {
    let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
    runner.set_threads(0);
    let arms = overload::overload_results(&mut runner, &[1.0, 10.0], &[Some(1000)])
        .expect("overload results");
    let (calm, storm) = arms.split_at(6);
    for (calm_arm, storm_arm) in calm.iter().zip(storm) {
        let r = &storm_arm.result;
        let be = r.overload.class(SloClass::Be);
        let ls = r.overload.class(SloClass::Ls);
        let lsr = r.overload.class(SloClass::Lsr);
        assert!(
            be.shed_rate() >= ls.shed_rate() && ls.shed_rate() >= lsr.shed_rate(),
            "{}: shedding not in class order (BE {:.4} / LS {:.4} / LSR {:.4})",
            r.scheduler,
            be.shed_rate(),
            ls.shed_rate(),
            lsr.shed_rate()
        );
        assert!(
            be.shed_rate() > 0.0,
            "{}: a 10x storm over a bounded queue must shed best-effort work",
            r.scheduler
        );
        // Calm-weather LSR p99 is ~0 ticks at fast scale, so the 2×
        // criterion needs an absolute floor: allow up to an hour (120
        // ticks) of reserved-tier tail — the unprotected classes' tails
        // explode past 3000 ticks under the same storm.
        let p99_calm = overload::p99_wait(&calm_arm.result, SloClass::Lsr);
        let p99_storm = overload::p99_wait(r, SloClass::Lsr);
        assert!(
            p99_storm <= (2.0 * p99_calm).max(120.0),
            "{}: LSR p99 wait exploded under protection ({p99_storm:.1} ticks vs {p99_calm:.1} calm)",
            r.scheduler
        );
    }
}

/// The sharded engine's fast sweep (hosts {256, 1024} × shards
/// {1, 4}) must match the golden head byte for byte at worker-thread
/// counts 1 and 4. The head covers the outcome and per-class panels —
/// including the per-arm digest column, so this pins "shards and
/// threads are invisible in the physics" as a CI fact.
#[test]
fn scale_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let rendered = scalebench::scale_with_threads(&ExpConfig::fast(), threads)
            .expect("scale")
            .render();
        assert_eq!(
            head_lines(&rendered, SCALE_GOLDEN_LINES),
            SCALE_GOLDEN,
            "scale drifted from tests/golden/scale_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

/// The serve figure — full optumd/optumload sessions over real
/// loopback sockets — must match the golden head byte for byte. The
/// head covers the session-outcome panel (digest column included) and
/// the per-class latency/ledger panel; the figure itself contains a
/// conns=1 and a conns=4 arm at the same seed/rate, so this golden
/// pins the replay-determinism claim: socket interleaving and
/// connection count are invisible in every reported byte. (The serve
/// engine is single-threaded by design — the worker-pool thread knob
/// the other figures loop over does not exist here.)
#[test]
fn serve_fast_matches_golden() {
    let rendered = serve::serve(&ExpConfig::fast()).expect("serve").render();
    assert_eq!(
        head_lines(&rendered, SERVE_GOLDEN_LINES),
        SERVE_GOLDEN,
        "serve drifted from tests/golden/serve_fast_head.tsv \
         (if intentional, regenerate with the gen_golden example)"
    );
}

/// The disrupt figure — serve sessions through a seeded chaos proxy,
/// plus a leased death arm — must match the golden head byte for
/// byte. The head pins two claims at once: every reconnectable-fault
/// arm carries the *same digest as the fault-free baseline* (wire
/// faults are invisible in deterministic output), and the death arm's
/// ledger balances with a nonzero `disconnected` class (evictions are
/// a deterministic outcome, not an accounting leak).
#[test]
fn disrupt_fast_matches_golden() {
    let rendered = disrupt::disrupt(&ExpConfig::fast())
        .expect("disrupt")
        .render();
    assert_eq!(
        head_lines(&rendered, DISRUPT_GOLDEN_LINES),
        DISRUPT_GOLDEN,
        "disrupt drifted from tests/golden/disrupt_fast_head.tsv \
         (if intentional, regenerate with the gen_golden example)"
    );
}

/// Cross-figure anchor: the disrupt baseline (and therefore every
/// converging fault arm) reports exactly the digest of the serve
/// figure's conns=4 rate=1 arm — the chaos plumbing costs nothing
/// when quiet.
#[test]
fn disrupt_baseline_digest_matches_the_serve_conns4_arm() {
    let serve_digest = SERVE_GOLDEN
        .lines()
        .find(|l| l.starts_with("4\t1\tnone\t"))
        .and_then(|l| l.split('\t').next_back())
        .expect("serve golden lacks the conns=4 rate=1 arm");
    let disrupt_digest = DISRUPT_GOLDEN
        .lines()
        .find(|l| l.starts_with("baseline\t"))
        .and_then(|l| l.split('\t').next_back())
        .expect("disrupt golden lacks the baseline arm");
    assert_eq!(
        disrupt_digest, serve_digest,
        "the disrupt baseline arm drifted from the serve conns=4 arm"
    );
}

#[test]
fn churn_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = churn::churn_grid(&mut runner, &CHURN_GRID)
            .expect("churn")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            CHURN_GOLDEN,
            "churn drifted from tests/golden/churn_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}
