//! Golden-figure regression suite: the first 20 lines of the fast-
//! scale `fig19` and `churn` figure TSV must match the snapshots in
//! `tests/golden/` byte for byte, at worker-thread counts 1 and 4.
//!
//! This turns two standing claims into CI-enforced tests: the figure
//! pipeline is deterministic (PR 1/2 verified thread-count invariance
//! by hand), and the observability instrumentation (PR 3) is
//! observation-only — recording spans and counters must not perturb a
//! single output byte.
//!
//! When figure output changes intentionally, regenerate with
//!
//! ```sh
//! cargo run --release -p optum-experiments --example gen_golden
//! ```
//!
//! and justify the diff in the PR.

use optum_platform::experiments::output::head_lines;
use optum_platform::experiments::{churn, endtoend, ExpConfig, Runner};

const FIG19_GOLDEN: &str = include_str!("golden/fig19_fast_head.tsv");
const CHURN_GOLDEN: &str = include_str!("golden/churn_fast_head.tsv");

/// Must match `gen_golden.rs`.
const GOLDEN_LINES: usize = 20;
/// Must match `gen_golden.rs`: one healthy arm, one stormy arm.
const CHURN_GRID: [f64; 2] = [f64::INFINITY, 0.5];

/// Worker-thread counts the goldens are asserted at. `set_threads`
/// takes precedence over `OPTUM_THREADS`, so the test controls the
/// fan-out without touching process-global env.
const THREAD_COUNTS: [usize; 2] = [1, 4];

#[test]
fn fig19_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = endtoend::fig19(&mut runner).expect("fig19").render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            FIG19_GOLDEN,
            "fig19 --fast drifted from tests/golden/fig19_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}

#[test]
fn churn_fast_matches_golden_at_each_thread_count() {
    for threads in THREAD_COUNTS {
        let mut runner = Runner::new(ExpConfig::fast()).expect("workload generation");
        runner.set_threads(threads);
        let rendered = churn::churn_grid(&mut runner, &CHURN_GRID)
            .expect("churn")
            .render();
        assert_eq!(
            head_lines(&rendered, GOLDEN_LINES),
            CHURN_GOLDEN,
            "churn drifted from tests/golden/churn_fast_head.tsv at threads={threads} \
             (if intentional, regenerate with the gen_golden example)"
        );
    }
}
