//! Property-based integration tests: invariants that must hold for
//! any seed and any scale.

use proptest::prelude::*;

use optum_platform::optum::deployment::{DeploymentModule, ProposedPlacement};
use optum_platform::sched::AlibabaLike;
use optum_platform::sim::{run, SimConfig};
use optum_platform::tracegen::{generate, WorkloadConfig};
use optum_platform::types::{NodeId, PodId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The generator always produces a well-formed, sorted pod stream
    /// whose ids index the vector, for any seed.
    #[test]
    fn workload_well_formed(seed in 0u64..1000) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        prop_assert!(!w.pods.is_empty());
        for (i, p) in w.pods.iter().enumerate() {
            prop_assert_eq!(p.spec.id.index(), i);
            prop_assert!(p.spec.request.is_valid());
            prop_assert!(p.spec.request.fits_within(&p.spec.limit));
            prop_assert!(p.input_factor > 0.0);
        }
        prop_assert!(w.pods.windows(2).all(|x| x[0].spec.arrival <= x[1].spec.arrival));
        // Every pod's app exists.
        for p in &w.pods {
            prop_assert!(p.spec.app.index() < w.apps.len());
        }
    }

    /// Simulation bookkeeping stays consistent for any seed.
    #[test]
    fn simulation_bookkeeping(seed in 0u64..500) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        let r = run(&w, AlibabaLike::default(), SimConfig::new(20)).unwrap();
        prop_assert_eq!(r.outcomes.len(), w.pods.len());
        let v = &r.violations;
        prop_assert!(v.cpu_node_ticks <= v.total_node_ticks);
        prop_assert!(v.mem_node_ticks <= v.total_node_ticks);
        prop_assert_eq!(
            v.total_node_ticks,
            20 * w.config.window_ticks()
        );
        for s in &r.cluster_series {
            prop_assert!(s.mean_cpu_util <= s.max_cpu_util + 1e-9);
            prop_assert!(s.max_cpu_util <= 1.0 + 1e-9);
            prop_assert!(s.active_nodes <= 20);
            prop_assert!(s.mean_cpu_util_active + 1e-9 >= s.mean_cpu_util * (20.0 / s.active_nodes.max(1) as f64) - 1e-9 || s.active_nodes == 0);
        }
    }

    /// Conflict resolution never loses or duplicates a proposal and
    /// never accepts two pods on one host.
    #[test]
    fn deployment_module_conserves_proposals(
        raw in proptest::collection::vec((0u32..50, 0u32..10, 0.0f64..1.0), 0..60)
    ) {
        // Dedup pod ids (a pod proposes at most once per round).
        let mut seen = std::collections::HashSet::new();
        let proposals: Vec<ProposedPlacement> = raw
            .into_iter()
            .filter(|(pod, _, _)| seen.insert(*pod))
            .map(|(pod, node, score)| ProposedPlacement {
                pod: PodId(pod),
                node: NodeId(node),
                score,
                scheduler: 0,
            })
            .collect();
        let n = proposals.len();
        let round = DeploymentModule::new().resolve(proposals);
        prop_assert_eq!(round.accepted.len() + round.redispatched.len(), n);
        let mut hosts = std::collections::HashSet::new();
        for p in &round.accepted {
            prop_assert!(hosts.insert(p.node), "host {:?} accepted twice", p.node);
        }
        // Every accepted proposal beats or ties every redispatched one
        // on the same host.
        for a in &round.accepted {
            for rj in &round.redispatched {
                if rj.node == a.node {
                    prop_assert!(a.score >= rj.score);
                }
            }
        }
    }
}
