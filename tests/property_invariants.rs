//! Property-based integration tests: invariants that must hold for
//! any seed and any scale.

use proptest::prelude::*;

use optum_platform::optum::deployment::{DeploymentModule, ProposedPlacement};
use optum_platform::sched::AlibabaLike;
use optum_platform::sim::{run, SimConfig};
use optum_platform::tracegen::{apply_storm, generate, StormConfig, WorkloadConfig};
use optum_platform::types::{NodeId, PodId, SloClass};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The generator always produces a well-formed, sorted pod stream
    /// whose ids index the vector, for any seed.
    #[test]
    fn workload_well_formed(seed in 0u64..1000) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        prop_assert!(!w.pods.is_empty());
        for (i, p) in w.pods.iter().enumerate() {
            prop_assert_eq!(p.spec.id.index(), i);
            prop_assert!(p.spec.request.is_valid());
            prop_assert!(p.spec.request.fits_within(&p.spec.limit));
            prop_assert!(p.input_factor > 0.0);
        }
        prop_assert!(w.pods.windows(2).all(|x| x[0].spec.arrival <= x[1].spec.arrival));
        // Every pod's app exists.
        for p in &w.pods {
            prop_assert!(p.spec.app.index() < w.apps.len());
        }
    }

    /// Simulation bookkeeping stays consistent for any seed.
    #[test]
    fn simulation_bookkeeping(seed in 0u64..500) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        let r = run(&w, AlibabaLike::default(), SimConfig::new(20)).unwrap();
        prop_assert_eq!(r.outcomes.len(), w.pods.len());
        let v = &r.violations;
        prop_assert!(v.cpu_node_ticks <= v.total_node_ticks);
        prop_assert!(v.mem_node_ticks <= v.total_node_ticks);
        prop_assert_eq!(
            v.total_node_ticks,
            20 * w.config.window_ticks()
        );
        for s in &r.cluster_series {
            prop_assert!(s.mean_cpu_util <= s.max_cpu_util + 1e-9);
            prop_assert!(s.max_cpu_util <= 1.0 + 1e-9);
            prop_assert!(s.active_nodes <= 20);
            prop_assert!(s.mean_cpu_util_active + 1e-9 >= s.mean_cpu_util * (20.0 / s.active_nodes.max(1) as f64) - 1e-9 || s.active_nodes == 0);
        }
    }

    /// Conflict resolution never loses or duplicates a proposal and
    /// never accepts two pods on one host.
    #[test]
    fn deployment_module_conserves_proposals(
        raw in proptest::collection::vec((0u32..50, 0u32..10, 0.0f64..1.0), 0..60)
    ) {
        // Dedup pod ids (a pod proposes at most once per round).
        let mut seen = std::collections::HashSet::new();
        let proposals: Vec<ProposedPlacement> = raw
            .into_iter()
            .filter(|(pod, _, _)| seen.insert(*pod))
            .map(|(pod, node, score)| ProposedPlacement {
                pod: PodId(pod),
                node: NodeId(node),
                score,
                scheduler: 0,
            })
            .collect();
        let n = proposals.len();
        let round = DeploymentModule::new().resolve(proposals);
        prop_assert_eq!(round.accepted.len() + round.redispatched.len(), n);
        let mut hosts = std::collections::HashSet::new();
        for p in &round.accepted {
            prop_assert!(hosts.insert(p.node), "host {:?} accepted twice", p.node);
        }
        // Every accepted proposal beats or ties every redispatched one
        // on the same host.
        for a in &round.accepted {
            for rj in &round.redispatched {
                if rj.node == a.node {
                    prop_assert!(a.score >= rj.score);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Admission accounting balances for any seed, queue cap, and
    /// decision budget under a storm: every arrival is admitted, shed,
    /// or still throttled at window end; shed pods are never placed;
    /// the queue never exceeds its cap.
    #[test]
    fn overload_accounting_conserves_arrivals(
        seed in 0u64..200,
        cap in proptest::option::of(0usize..300),
        budget in proptest::option::of(1u64..2000),
    ) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        let storm = apply_storm(&w, &StormConfig::single(seed, 960, 480, 4.0)).unwrap();
        let mut cfg = SimConfig::new(20);
        cfg.queue_cap = cap;
        cfg.decision_cost_budget = budget;
        let r = run(&storm, AlibabaLike::default(), cfg).unwrap();
        prop_assert!(r.overload.conserved(), "admission ledger out of balance");
        let arrivals: u64 = r.overload.per_class.iter().map(|c| c.arrivals).sum();
        prop_assert_eq!(arrivals, storm.pods.len() as u64);
        if let Some(c) = cap {
            prop_assert!(r.overload.max_depth <= c as u64);
        } else {
            prop_assert_eq!(r.overload.total_shed(), 0);
        }
        for o in &r.outcomes {
            if o.shed_at.is_some() {
                prop_assert!(o.node.is_none(), "shed pod {:?} was placed", o.id);
                prop_assert!(o.placed_at.is_none());
            }
        }
    }

    /// Protection that never binds is invisible: a unit-intensity
    /// storm leaves the workload bit-identical, and a cap/budget too
    /// large to ever trigger leaves every outcome and cluster sample
    /// bit-identical to the unprotected run — the budgeted scheduler
    /// paths must make exactly the decisions of the unbudgeted ones
    /// when unpressured.
    #[test]
    fn overload_protection_that_never_binds_is_invisible(seed in 0u64..200) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        let calm = apply_storm(&w, &StormConfig::single(seed, 960, 480, 1.0)).unwrap();
        prop_assert_eq!(&calm, &w, "unit-intensity storm must be the identity");
        let base = run(&w, AlibabaLike::default(), SimConfig::new(20)).unwrap();
        let mut cfg = SimConfig::new(20);
        cfg.queue_cap = Some(usize::MAX);
        cfg.decision_cost_budget = Some(u64::MAX);
        let guarded = run(&w, AlibabaLike::default(), cfg).unwrap();
        prop_assert_eq!(&guarded.outcomes, &base.outcomes);
        prop_assert_eq!(&guarded.cluster_series, &base.cluster_series);
        prop_assert_eq!(guarded.overload.total_shed(), 0);
    }

    /// Shedding is class-aware for any seed: under a storm with a
    /// tight queue cap, denied service lands on best-effort work
    /// first and the reserved tier last. The storm runs to the end of
    /// the window so denial is measured at the height of overload —
    /// after a mid-window storm the throttled best-effort backlog
    /// drains back in, which can legitimately erase BE's cumulative
    /// denied-service count while peak-time LS sheds remain.
    #[test]
    fn overload_shedding_respects_class_order(seed in 0u64..200) {
        let w = generate(&WorkloadConfig::sized(20, 1, seed)).unwrap();
        let storm = apply_storm(&w, &StormConfig::single(seed, 2400, 480, 6.0)).unwrap();
        let mut cfg = SimConfig::new(20);
        cfg.queue_cap = Some(40);
        cfg.decision_cost_budget = Some(20 * 256);
        let r = run(&storm, AlibabaLike::default(), cfg).unwrap();
        let be = r.overload.class(SloClass::Be).shed_rate();
        let ls = r.overload.class(SloClass::Ls).shed_rate();
        let lsr = r.overload.class(SloClass::Lsr).shed_rate();
        prop_assert!(
            be >= ls && ls >= lsr,
            "shed rates out of class order: BE {be:.4} / LS {ls:.4} / LSR {lsr:.4}"
        );
    }
}
