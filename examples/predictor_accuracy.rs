//! Compare host resource-usage predictors on live cluster state — a
//! miniature of the paper's Fig. 11 experiment.
//!
//! ```text
//! cargo run --release --example predictor_accuracy
//! ```

use optum_platform::predictors::{
    BorgDefault, MaxPredictor, NSigma, OptumPredictor, ResourceCentral,
};
use optum_platform::sched::AlibabaLike;
use optum_platform::sim::{run, PredictorEval, SimConfig};
use optum_platform::tracegen::{generate, WorkloadConfig};
use optum_platform::types::TICKS_PER_HOUR;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = generate(&WorkloadConfig::sized(50, 2, 9))?;
    let mut config = SimConfig::new(50);
    config.predictor_eval = Some(PredictorEval {
        predictors: vec![
            Box::new(BorgDefault::production()),
            Box::new(ResourceCentral),
            Box::new(NSigma::production()),
            Box::new(MaxPredictor::production()),
            Box::new(OptumPredictor),
        ],
        stride: TICKS_PER_HOUR,
        horizon: TICKS_PER_HOUR,
        warmup: 24 * TICKS_PER_HOUR,
    });
    let result = run(&workload, AlibabaLike::default(), config)?;

    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>12}",
        "predictor", "points", "max_over", "max_under", "P(under>10%)"
    );
    for (name, errs) in &result.predictor_errors {
        println!(
            "{:<18} {:>8} {:>9.0}% {:>9.0}% {:>12.4}",
            name,
            errs.len(),
            errs.max_over() * 100.0,
            errs.max_under() * 100.0,
            errs.frac_under_worse_than(0.1)
        );
    }
    println!("\nOver-estimation wastes capacity; under-estimation risks interference.");
    println!("The Optum predictor's pairwise ERO composition keeps both tails short.");
    Ok(())
}
