//! Quickstart: generate a synthetic unified-scheduling workload, run
//! it through the production-like reference scheduler, and read the
//! basic cluster statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use optum_platform::prelude::*;
use optum_platform::sched::AlibabaLike;
use optum_platform::sim::{run, SimConfig};
use optum_platform::tracegen::{generate, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small cluster: 50 hosts over 2 simulated days.
    let workload = generate(&WorkloadConfig::sized(50, 2, 7))?;
    println!(
        "workload: {} applications, {} pods over {} days",
        workload.apps.len(),
        workload.pods.len(),
        workload.config.days
    );
    for (class, count) in workload.slo_distribution() {
        println!("  {class:>8}: {count} pods");
    }

    // Simulate under the reference scheduler.
    let result = run(&workload, AlibabaLike::default(), SimConfig::new(50))?;
    println!("\nscheduler: {}", result.scheduler);
    println!("placement rate: {:.1}%", result.placement_rate() * 100.0);
    println!(
        "mean host CPU utilization: {:.1}%",
        result.mean_cpu_utilization() * 100.0
    );
    println!("capacity violation rate: {:.5}", result.violations.rate());

    // Waiting times by class.
    for slo in [SloClass::Be, SloClass::Ls, SloClass::Lsr] {
        let waits: Vec<f64> = result.outcomes_of(slo).map(|o| o.wait_seconds()).collect();
        if waits.is_empty() {
            continue;
        }
        let mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let max = waits.iter().cloned().fold(0.0, f64::max);
        println!("{slo:>5} waiting: mean {mean:.0}s, max {max:.0}s");
    }
    Ok(())
}
