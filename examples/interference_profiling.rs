//! Train the Interference Profiler and inspect what it learned: the
//! per-application PSI response to host pressure (the models behind
//! Eq. 1 and Fig. 18).
//!
//! ```text
//! cargo run --release --example interference_profiling
//! ```

use optum_platform::optum::{InterferenceProfiler, ModelKind, ProfilerConfig, TracingCoordinator};
use optum_platform::tracegen::{generate, WorkloadConfig};
use optum_platform::types::AppId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = generate(&WorkloadConfig::sized(50, 2, 42))?;
    let training = TracingCoordinator::new(50, 2).collect(&workload)?;

    // Compare the model families of Fig. 18 on the same dataset.
    println!("model-family comparison (median validation MAPE across apps):");
    for kind in ModelKind::ALL {
        let profiler = InterferenceProfiler::train(
            &training,
            ProfilerConfig {
                model: kind,
                ..ProfilerConfig::default()
            },
        )?;
        let mut mapes: Vec<f64> = profiler.ls_mapes().iter().map(|(_, m)| *m).collect();
        mapes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if mapes.is_empty() {
            continue;
        }
        println!(
            "  {:>6}: {:>6.3} (over {} LS apps)",
            kind.label(),
            mapes[mapes.len() / 2],
            mapes.len()
        );
    }

    // Show the learned pressure curve of a few applications.
    let profiler = InterferenceProfiler::train(&training, ProfilerConfig::default())?;
    println!("\nlearned PSI vs host CPU utilization (Random Forest):");
    for app_idx in 0..workload.apps.len().min(60) {
        let app = AppId(app_idx as u32);
        let profile = &training.app_profiles[app_idx];
        if !profile.seen {
            continue;
        }
        let Some(curve): Option<Vec<f64>> = [0.3, 0.5, 0.7, 0.9]
            .iter()
            .map(|&h| {
                profiler.predict_psi(
                    app,
                    profile.max_cpu_util,
                    profile.max_mem_util,
                    h,
                    0.4,
                    profile.max_qps_norm,
                )
            })
            .collect()
        else {
            continue;
        };
        println!(
            "  app {:>3}: util 0.3→{:.2}  0.5→{:.2}  0.7→{:.2}  0.9→{:.2}",
            app_idx, curve[0], curve[1], curve[2], curve[3]
        );
        if app_idx > 8 {
            break;
        }
    }
    Ok(())
}
