//! The paper's headline experiment in miniature: profile the workload
//! under the production scheduler, train Optum's offline profilers,
//! and compare utilization and pod performance across schedulers.
//!
//! ```text
//! cargo run --release --example optum_vs_baseline
//! ```

use optum_platform::optum::{OptumConfig, OptumScheduler, ProfilerConfig, TracingCoordinator};
use optum_platform::sched::{AlibabaLike, BorgLike, RcLike};
use optum_platform::sim::{run, SimConfig, SimResult};
use optum_platform::tracegen::{generate, WorkloadConfig};

fn active_util(result: &SimResult) -> f64 {
    result
        .cluster_series
        .iter()
        .map(|s| s.mean_cpu_util_active)
        .sum::<f64>()
        / result.cluster_series.len().max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hosts = 60;
    let workload = generate(&WorkloadConfig::sized(hosts, 2, 42))?;

    // Phase 1 (❶–❸): the Tracing Coordinator collects profiling data
    // and the Offline Profiler trains per-application models.
    println!("profiling run + offline training…");
    let coordinator = TracingCoordinator::new(hosts, 2);
    let training = coordinator.collect(&workload)?;
    println!(
        "  {} PSI samples, {} completion samples, {} co-location pairs",
        training.psi.len(),
        training.ct.len(),
        training.ero.observed_pairs()
    );
    let optum = OptumScheduler::from_training(
        OptumConfig::default(),
        &training,
        ProfilerConfig::default(),
    )?;

    // Phase 2 (❹–❼): every scheduler replays the same workload.
    println!("evaluation runs…");
    let reference = run(&workload, AlibabaLike::default(), SimConfig::new(hosts))?;
    let contenders: Vec<SimResult> = vec![
        run(&workload, optum, SimConfig::new(hosts))?,
        run(&workload, RcLike::default(), SimConfig::new(hosts))?,
        run(&workload, BorgLike::default(), SimConfig::new(hosts))?,
    ];

    let base = active_util(&reference);
    println!(
        "\n{:<12} {:>10} {:>12} {:>10}",
        "scheduler", "util", "improvement", "violations"
    );
    println!(
        "{:<12} {:>9.1}% {:>12} {:>10.5}",
        reference.scheduler,
        base * 100.0,
        "—",
        reference.violations.rate()
    );
    for r in &contenders {
        let u = active_util(r);
        println!(
            "{:<12} {:>9.1}% {:>+10.1}pp {:>10.5}",
            r.scheduler,
            u * 100.0,
            (u - base) * 100.0,
            r.violations.rate()
        );
    }
    Ok(())
}
