//! Conflict resolution between parallel distributed schedulers
//! (the Deployment Module of §4.4).
//!
//! Several Optum schedulers each own a share of the pending queue and
//! propose placements independently; the Deployment Module accepts at
//! most one pod per host per round and re-dispatches the losers.
//!
//! ```text
//! cargo run --release --example distributed_schedulers
//! ```

use optum_platform::optum::deployment::{DeploymentModule, ProposedPlacement};
use optum_platform::types::{NodeId, PodId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let schedulers = 4;
    let pods_per_scheduler = 8;
    let hosts = 10u32;

    // Each scheduler independently proposes placements; because they
    // score similar cluster states, they often pick the same "best"
    // hosts — the conflict the Deployment Module exists to resolve.
    let mut proposals = Vec::new();
    for s in 0..schedulers {
        for k in 0..pods_per_scheduler {
            proposals.push(ProposedPlacement {
                pod: PodId((s * pods_per_scheduler + k) as u32),
                // Skewed host choice: everyone loves the same hot hosts.
                node: NodeId(rng.gen_range(0..hosts.min(4))),
                score: rng.gen_range(0.0..1.0),
                scheduler: s,
            });
        }
    }
    println!(
        "{} proposals from {} parallel schedulers",
        proposals.len(),
        schedulers
    );

    let module = DeploymentModule::new();
    let mut round = 0;
    let mut pending = proposals;
    while !pending.is_empty() {
        round += 1;
        let resolved = module.resolve(pending);
        println!(
            "round {round}: accepted {} placements, re-dispatched {}",
            resolved.accepted.len(),
            resolved.redispatched.len()
        );
        for p in &resolved.accepted {
            println!(
                "  pod {:>2} -> {} (scheduler {}, score {:.2})",
                p.pod.0, p.node, p.scheduler, p.score
            );
        }
        // Losers would be re-scored against fresh state; here they
        // simply retry different hosts next round.
        pending = resolved
            .redispatched
            .into_iter()
            .map(|mut p| {
                p.node = NodeId(rng.gen_range(0..hosts));
                p
            })
            .collect();
        if round > 20 {
            break;
        }
    }
}
